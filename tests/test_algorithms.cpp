// Unit tests for temporal reachability and journey optimization —
// foremost / shortest / fastest under all three waiting policies, and the
// dominance asymmetry that separates Wait from the others.
#include <gtest/gtest.h>

#include "tvg/algorithms.hpp"
#include "tvg/generators.hpp"

namespace tvg {
namespace {

// The classic store-carry-forward example: u-v exists early, v-w late.
struct Relay {
  TimeVaryingGraph g;
  NodeId u, v, w;
};

Relay make_relay() {
  Relay r;
  r.u = r.g.add_node("u");
  r.v = r.g.add_node("v");
  r.w = r.g.add_node("w");
  r.g.add_edge(r.u, r.v, 'a', Presence::intervals(IntervalSet::single(0, 2)),
               Latency::constant(1));
  r.g.add_edge(r.v, r.w, 'b', Presence::intervals(IntervalSet::single(8, 10)),
               Latency::constant(1));
  return r;
}

TEST(Foremost, WaitBridgesTemporalGaps) {
  const Relay r = make_relay();
  const ForemostTree t =
      foremost_arrivals(r.g, r.u, 0, Policy::wait());
  EXPECT_EQ(t.arrival[r.u], 0);
  EXPECT_EQ(t.arrival[r.v], 1);
  EXPECT_EQ(t.arrival[r.w], 9);  // waits at v until 8
}

TEST(Foremost, NoWaitCannotBridge) {
  const Relay r = make_relay();
  const ForemostTree t = foremost_arrivals(
      r.g, r.u, 0, Policy::no_wait(), SearchLimits::up_to(100));
  EXPECT_EQ(t.arrival[r.v], 1);
  EXPECT_EQ(t.arrival[r.w], kTimeInfinity);
}

TEST(Foremost, BoundedWaitBridgesIffBoundSuffices) {
  const Relay r = make_relay();
  // The LATEST arrival at v is 2 (departing uv at 1 — bounded-wait
  // reachability is non-monotone in arrival time!), so the vw window
  // [8,10) is reachable iff 2 + d >= 8, i.e. d >= 6.
  const ForemostTree t5 = foremost_arrivals(
      r.g, r.u, 0, Policy::bounded_wait(5), SearchLimits::up_to(100));
  EXPECT_EQ(t5.arrival[r.w], kTimeInfinity);
  const ForemostTree t6 = foremost_arrivals(
      r.g, r.u, 0, Policy::bounded_wait(6), SearchLimits::up_to(100));
  EXPECT_EQ(t6.arrival[r.w], 9);
}

TEST(Foremost, WitnessJourneysValidate) {
  const Relay r = make_relay();
  const ForemostTree t = foremost_arrivals(r.g, r.u, 0, Policy::wait());
  const auto j = t.journey_to(r.g, r.w);
  ASSERT_TRUE(j.has_value());
  EXPECT_TRUE(validate_journey(r.g, *j, Policy::wait()).ok);
  EXPECT_EQ(j->arrival(r.g), 9);
  EXPECT_EQ(j->hops(), 2u);
  EXPECT_EQ(t.journey_to(r.g, r.u)->hops(), 0u);
}

TEST(Foremost, UnreachableGivesNoJourney) {
  const Relay r = make_relay();
  const ForemostTree t = foremost_arrivals(
      r.g, r.w, 0, Policy::wait(), SearchLimits::up_to(1000));
  EXPECT_EQ(t.arrival[r.u], kTimeInfinity);
  EXPECT_EQ(t.journey_to(r.g, r.u), std::nullopt);
}

TEST(Foremost, LaterArrivalCanWinUnderNoWait) {
  // The dominance failure that forces configuration search under NoWait:
  // the direct early arrival at m misses the m->z edge; a slower route
  // arrives exactly on time.
  TimeVaryingGraph g;
  const NodeId s = g.add_node("s");
  const NodeId m = g.add_node("m");
  const NodeId z = g.add_node("z");
  g.add_edge(s, m, 'a', Presence::always(), Latency::constant(1));  // m @1
  g.add_edge(s, m, 'b', Presence::always(), Latency::constant(5));  // m @5
  g.add_edge(m, z, 'c', Presence::at_times({5}), Latency::constant(1));
  const ForemostTree t = foremost_arrivals(
      g, s, 0, Policy::no_wait(), SearchLimits::up_to(100));
  EXPECT_EQ(t.arrival[m], 1);  // earliest arrival at m...
  EXPECT_EQ(t.arrival[z], 6);  // ...but z is reached via the @5 arrival
  const auto j = t.journey_to(g, z);
  ASSERT_TRUE(j.has_value());
  EXPECT_TRUE(validate_journey(g, *j, Policy::no_wait()).ok);
  EXPECT_EQ(j->word(g), "bc");
}

TEST(Shortest, PrefersFewerHopsOverEarlierArrival) {
  TimeVaryingGraph g;
  const NodeId s = g.add_node();
  const NodeId a = g.add_node();
  const NodeId t = g.add_node();
  // Two-hop fast path and one-hop slow path.
  g.add_edge(s, a, 'x', Presence::always(), Latency::constant(1));
  g.add_edge(a, t, 'x', Presence::always(), Latency::constant(1));
  g.add_edge(s, t, 'y', Presence::always(), Latency::constant(50));
  const auto j = shortest_journey(g, s, t, 0, Policy::wait());
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->hops(), 1u);
  EXPECT_EQ(j->word(g), "y");
}

TEST(Shortest, WorksUnderNoWait) {
  const Relay r = make_relay();
  EXPECT_EQ(shortest_journey(r.g, r.u, r.w, 0, Policy::no_wait(),
                             SearchLimits::up_to(50)),
            std::nullopt);
  const auto j = shortest_journey(r.g, r.u, r.w, 0, Policy::wait());
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->hops(), 2u);
}

TEST(Shortest, SourceEqualsTargetIsEmpty) {
  const Relay r = make_relay();
  const auto j = shortest_journey(r.g, r.u, r.u, 3, Policy::wait());
  ASSERT_TRUE(j.has_value());
  EXPECT_TRUE(j->empty());
}

TEST(Fastest, MinimizesDurationNotArrival) {
  // Departing later is faster: an early slow window and a late fast one.
  TimeVaryingGraph g;
  const NodeId s = g.add_node();
  const NodeId t = g.add_node();
  g.add_edge(s, t, 'a', Presence::at_times({0}), Latency::constant(20));
  g.add_edge(s, t, 'b', Presence::at_times({10}), Latency::constant(2));
  const auto j =
      fastest_journey(g, s, t, 0, 15, Policy::wait(), SearchLimits::up_to(64));
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->word(g), "b");
  EXPECT_EQ(j->duration(g), 2);
  EXPECT_EQ(j->legs.front().departure, 10);
}

TEST(Fastest, MultiHopDuration) {
  const Relay r = make_relay();
  // Departing at 1 (last uv instant) minimizes time spent waiting at v.
  const auto j = fastest_journey(r.g, r.u, r.w, 0, 20, Policy::wait(),
                                 SearchLimits::up_to(200));
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->legs.front().departure, 1);
  EXPECT_EQ(j->duration(r.g), 9 - 1);
}

TEST(Reachability, SetAndClosureAgree) {
  const Relay r = make_relay();
  const auto reach = reachable_set(r.g, r.u, 0, Policy::wait());
  EXPECT_TRUE(reach[r.u]);
  EXPECT_TRUE(reach[r.v]);
  EXPECT_TRUE(reach[r.w]);
  const auto closure = temporal_closure(r.g, 0, Policy::wait());
  EXPECT_EQ(closure[r.u][r.w], 9);
  EXPECT_EQ(closure[r.w][r.u], kTimeInfinity);
}

TEST(Reachability, TemporallyConnectedNeedsAllPairs) {
  const Relay r = make_relay();
  EXPECT_FALSE(temporally_connected(r.g, 0, Policy::wait(),
                                    SearchLimits::up_to(100)));
  // Close the cycle: w -> u always available. All journeys start at 0,
  // so w reaches u at 1, still in time for uv's [0,2) window: connected.
  TimeVaryingGraph g = r.g;
  g.add_edge(r.w, r.u, 'c', Presence::always(), Latency::constant(1));
  EXPECT_TRUE(
      temporally_connected(g, 0, Policy::wait(), SearchLimits::up_to(100)));
  // Starting at t=2 instead, the uv window is gone: disconnected.
  EXPECT_FALSE(
      temporally_connected(g, 2, Policy::wait(), SearchLimits::up_to(100)));
  // With recurrent (periodic) edges, connectivity holds.
  TimeVaryingGraph h;
  const NodeId a = h.add_node();
  const NodeId b = h.add_node();
  const NodeId c = h.add_node();
  h.add_edge(a, b, 'x', Presence::periodic(4, IntervalSet::from_points({0})),
             Latency::constant(1));
  h.add_edge(b, c, 'x', Presence::periodic(4, IntervalSet::from_points({2})),
             Latency::constant(1));
  h.add_edge(c, a, 'x', Presence::periodic(4, IntervalSet::from_points({1})),
             Latency::constant(1));
  EXPECT_TRUE(temporally_connected(h, 0, Policy::wait(),
                                   SearchLimits::up_to(1000)));
  const auto diam = temporal_diameter(h, 0, Policy::wait(),
                                      SearchLimits::up_to(1000));
  ASSERT_TRUE(diam.has_value());
  EXPECT_GT(*diam, 0);
}

TEST(Reachability, DiameterIsNulloptWhenDisconnected) {
  const Relay r = make_relay();
  EXPECT_EQ(temporal_diameter(r.g, 0, Policy::wait(),
                              SearchLimits::up_to(100)),
            std::nullopt);
}

TEST(Reachability, WaitDominatesNoWaitOnRandomGraphs) {
  // Monotonicity property: anything NoWait reaches, Wait reaches too.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EdgeMarkovianParams params;
    params.nodes = 10;
    params.horizon = 40;
    params.seed = seed;
    const TimeVaryingGraph g = make_edge_markovian(params);
    for (NodeId src = 0; src < 3 && src < g.node_count(); ++src) {
      const auto nowait = reachable_set(g, src, 0, Policy::no_wait(),
                                        SearchLimits::up_to(60));
      const auto wait = reachable_set(g, src, 0, Policy::wait(),
                                      SearchLimits::up_to(60));
      for (NodeId v = 0; v < g.node_count(); ++v) {
        EXPECT_LE(nowait[v], wait[v])
            << "seed=" << seed << " src=" << src << " v=" << v;
      }
    }
  }
}

TEST(Reachability, BoundedWaitIsMonotoneInBound) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    EdgeMarkovianParams params;
    params.nodes = 8;
    params.horizon = 30;
    params.seed = seed;
    const TimeVaryingGraph g = make_edge_markovian(params);
    std::size_t prev = 0;
    for (Time d : {0, 2, 5, 10, 30}) {
      const auto reach = reachable_set(g, 0, 0, Policy::bounded_wait(d),
                                       SearchLimits::up_to(50));
      const auto count = static_cast<std::size_t>(
          std::count(reach.begin(), reach.end(), true));
      EXPECT_GE(count, prev) << "seed=" << seed << " d=" << d;
      prev = count;
    }
  }
}

TEST(SearchLimits, TruncationIsReported) {
  // A generous always-on clique under BoundedWait explodes configs.
  TimeVaryingGraph g;
  g.add_nodes(4);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) {
        g.add_edge(u, v, 'a', Presence::always(), Latency::constant(1));
      }
    }
  }
  SearchLimits limits;
  limits.horizon = 1000;
  limits.max_configs = 16;
  const ForemostTree t =
      foremost_arrivals(g, 0, 0, Policy::bounded_wait(3), limits);
  EXPECT_TRUE(t.truncated);
}

TEST(Fastest, ReportsCandidateTruncation) {
  // Shrinking latency makes the last departure the unique optimum, so a
  // truncated candidate scan returns a non-optimal journey — which must
  // be flagged instead of silent.
  TimeVaryingGraph g;
  const NodeId s = g.add_node();
  const NodeId t = g.add_node();
  g.add_edge(s, t, 'a', Presence::intervals(IntervalSet::single(0, 100)),
             Latency::function([](Time dep) { return 100 - dep; },
                               "shrinking"));
  SearchLimits limits;
  limits.horizon = 300;
  limits.max_fastest_candidates = 8;
  const FastestJourneyResult truncated =
      fastest_journey_checked(g, s, t, 0, 99, Policy::wait(), limits);
  EXPECT_TRUE(truncated.truncated);
  ASSERT_TRUE(truncated.journey.has_value());
  EXPECT_GT(truncated.journey->duration(g), 1);

  SearchLimits full = limits;
  full.max_fastest_candidates = 4096;
  const FastestJourneyResult exact =
      fastest_journey_checked(g, s, t, 0, 99, Policy::wait(), full);
  EXPECT_FALSE(exact.truncated);
  ASSERT_TRUE(exact.journey.has_value());
  EXPECT_EQ(exact.journey->legs.front().departure, 99);
  EXPECT_EQ(exact.journey->duration(g), 1);
  // The unchecked wrapper returns the same journey.
  EXPECT_EQ(fastest_journey(g, s, t, 0, 99, Policy::wait(), full),
            exact.journey);
}

TEST(BoundedWait, HorizonClampsDepartureWindow) {
  // The waiting bound would allow departing at 6, but the search horizon
  // clips the window first (max_departure(t) vs horizon clamping).
  TimeVaryingGraph g;
  const NodeId u = g.add_node();
  const NodeId v = g.add_node();
  g.add_edge(u, v, 'a', Presence::eventually_always(6), Latency::constant(1));
  const ForemostTree clipped = foremost_arrivals(
      g, u, 0, Policy::bounded_wait(10), SearchLimits::up_to(5));
  EXPECT_EQ(clipped.arrival[v], kTimeInfinity);
  const ForemostTree open = foremost_arrivals(
      g, u, 0, Policy::bounded_wait(10), SearchLimits::up_to(7));
  EXPECT_EQ(open.arrival[v], 7);
}

TEST(BoundedWait, InfiniteHorizonEnumeratesFiniteSchedules) {
  // horizon == kTimeInfinity leaves the window [t, t + bound]; the
  // enumeration must terminate once the schedule runs out of events.
  TimeVaryingGraph g;
  const NodeId u = g.add_node();
  const NodeId v = g.add_node();
  g.add_edge(u, v, 'a', Presence::at_times({40}), Latency::constant(2));
  const ForemostTree t = foremost_arrivals(g, u, 0, Policy::bounded_wait(50));
  EXPECT_EQ(t.arrival[v], 42);
  EXPECT_FALSE(t.truncated);
  const ForemostTree miss =
      foremost_arrivals(g, u, 0, Policy::bounded_wait(30));
  EXPECT_EQ(miss.arrival[v], kTimeInfinity);
}

TEST(BoundedWait, InfiniteWindowOverInfiniteScheduleHitsBudgetNotLivelock) {
  // Wait + non-constant latency + infinite horizon falls back to a
  // bounded-wait enumeration whose departure window is unbounded; with an
  // always-present edge there are infinitely many admissible departures.
  // The config budget must cut the enumeration off (reported as
  // truncation) rather than enumerating forever.
  TimeVaryingGraph g;
  const NodeId u = g.add_node();
  const NodeId v = g.add_node();
  g.add_edge(u, v, 'a', Presence::always(),
             Latency::function([](Time t) { return t % 2 == 0 ? 2 : 1; },
                               "parity"));
  SearchLimits limits;  // horizon stays kTimeInfinity
  limits.max_configs = 64;
  const ForemostTree t = foremost_arrivals(g, u, 0, Policy::wait(), limits);
  EXPECT_TRUE(t.truncated);
  EXPECT_EQ(t.arrival[v], 2);
}

TEST(BoundedWait, AllRejectedArrivalsStillTerminateViaStepBudget) {
  // Worst case for budget-bounded enumeration: an unbounded departure
  // window over an always-present edge whose every arrival is filtered
  // (infinite latency), so the config budget alone never binds. The
  // step budget must end the search and report truncation.
  TimeVaryingGraph g;
  const NodeId u = g.add_node();
  const NodeId v = g.add_node();
  g.add_edge(u, v, 'a', Presence::always(),
             Latency::function([](Time) { return kTimeInfinity; }, "stuck"));
  SearchLimits limits;  // horizon stays kTimeInfinity
  limits.max_configs = 64;
  const ForemostTree t = foremost_arrivals(g, u, 0, Policy::wait(), limits);
  EXPECT_TRUE(t.truncated);
  EXPECT_EQ(t.arrival[v], kTimeInfinity);
}

TEST(BoundedWait, DuplicateHeavyFiniteSearchIsNotSpuriouslyTruncated) {
  // With the waiting bound spanning the whole horizon, every config
  // re-enumerates the full window of ~2000 departures, nearly all
  // duplicates — and once the visited set saturates, the remaining queue
  // tail admits nothing at all (~8M fruitless steps total). The
  // enumeration watchdog must only trip on a single never-ending
  // expansion, not on this exhaustive finite search.
  TimeVaryingGraph g;
  const NodeId u = g.add_node();
  const NodeId v = g.add_node();
  g.add_edge(u, v, 'a', Presence::always(), Latency::constant(1));
  g.add_edge(v, u, 'a', Presence::always(), Latency::constant(1));
  SearchLimits limits;
  limits.horizon = 2000;
  limits.max_configs = 8192;  // 4000 configs actually explored
  const ForemostTree t =
      foremost_arrivals(g, u, 0, Policy::bounded_wait(2000), limits);
  EXPECT_FALSE(t.truncated);
  EXPECT_EQ(t.arrival[v], 1);
  EXPECT_EQ(t.configs.size(), 4000u);
}

TEST(Fastest, SharedSchedulesDoNotChargeCandidateBudgetTwice) {
  // Two parallel out-edges with the same 10-instant schedule: only 10
  // distinct candidates exist, so a budget of 15 must not be reported
  // as truncated even though the raw per-edge enumeration sees 20.
  TimeVaryingGraph g;
  const NodeId s = g.add_node();
  const NodeId t = g.add_node();
  const Presence window = Presence::intervals(IntervalSet::single(0, 10));
  g.add_edge(s, t, 'a', window, Latency::constant(5));
  g.add_edge(s, t, 'b', window, Latency::constant(3));
  SearchLimits limits;
  limits.horizon = 50;
  limits.max_fastest_candidates = 15;
  const FastestJourneyResult res =
      fastest_journey_checked(g, s, t, 0, 20, Policy::wait(), limits);
  EXPECT_FALSE(res.truncated);
  ASSERT_TRUE(res.journey.has_value());
  EXPECT_EQ(res.journey->duration(g), 3);
  EXPECT_EQ(res.journey->word(g), "b");
}

TEST(BoundedWait, InfinitySentinelFromNextPresentIsAbsence) {
  // A user-supplied next_present accelerator may (wrongly but plausibly)
  // signal "never again" with kTimeInfinity itself rather than nullopt;
  // the engine must read that as absence, never as a departure at the end
  // of time.
  TimeVaryingGraph g;
  const NodeId u = g.add_node();
  const NodeId v = g.add_node();
  g.add_edge(u, v, 'a',
             Presence::predicate_with_next(
                 [](Time t) { return t == 3; },
                 [](Time t) -> std::optional<Time> {
                   if (t <= 3) return 3;
                   return kTimeInfinity;  // sentinel instead of nullopt
                 }),
             Latency::constant(1));
  const ForemostTree t =
      foremost_arrivals(g, u, 0, Policy::bounded_wait(kTimeInfinity));
  EXPECT_EQ(t.arrival[v], 4);
  EXPECT_FALSE(t.truncated);
}

}  // namespace
}  // namespace tvg
