// Tests for the engine-level result cache (src/tvg/result_cache.hpp)
// and its QueryEngine wiring:
//  * a cache hit returns a value equal to a cold run, for every entry
//    point (journey / closure / acceptance);
//  * LRU eviction holds the entry count at capacity and counts
//    evictions;
//  * hit/miss stats counters are exact on a deterministic sequence;
//  * closure keys canonicalize (implicit "all sources" = explicit list,
//    thread count excluded);
//  * the generation tag keeps a cache from serving entries stamped by a
//    different engine incarnation;
//  * concurrent hammering of one hot key is safe (run under TSan/ASan in
//    CI) and every thread sees the cold-run value;
//  * property test: a caching engine and a cache-disabled engine agree
//    result-for-result on randomized query streams with repeats.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "tvg/generators.hpp"
#include "tvg/query_engine.hpp"
#include "tvg/result_cache.hpp"

namespace {

using namespace tvg;

TimeVaryingGraph test_graph(std::uint64_t seed) {
  RandomScheduledParams params;
  params.nodes = 9;
  params.edges = 24;
  params.horizon = 40;
  params.seed = seed;
  return make_random_scheduled(params);
}

TEST(ResultCache, JourneyHitEqualsColdRun) {
  const TimeVaryingGraph g = test_graph(1);
  const QueryEngine cached(g);
  const QueryEngine cold(g, 1, CacheConfig::disabled());
  ASSERT_TRUE(cached.cache_enabled());
  ASSERT_FALSE(cold.cache_enabled());
  for (const JourneyQuery& q :
       {JourneyQuery::foremost(0, 0).to(4).under(Policy::wait()),
        JourneyQuery::foremost(1, 2).under(Policy::bounded_wait(3)),
        JourneyQuery::shortest(0, 5, 0).under(Policy::wait()),
        JourneyQuery::fastest(0, 3, 0, 20).under(Policy::no_wait())}) {
    const JourneyResult first = cached.run(q);   // miss
    const JourneyResult second = cached.run(q);  // hit
    EXPECT_EQ(first, second);
    EXPECT_EQ(first, cold.run(q));
  }
  const CacheStats stats = cached.cache_stats();
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(cold.cache_stats().hits + cold.cache_stats().misses, 0u);
}

TEST(ResultCache, ClosureAndAcceptHitsEqualColdRuns) {
  const TimeVaryingGraph g = test_graph(2);
  const QueryEngine cached(g);
  const QueryEngine cold(g, 1, CacheConfig::disabled());

  ClosureQuery cq;
  cq.limits = SearchLimits::up_to(100);
  const ClosureResult closure_first = cached.closure(cq);
  EXPECT_EQ(closure_first, cached.closure(cq));
  EXPECT_EQ(closure_first, cold.closure(cq));

  AcceptSpec spec;
  spec.initial = {0};
  spec.accepting = {1, 2};
  spec.policy = Policy::wait();
  spec.horizon = 60;
  const std::vector<Word> words{"a", "ab", "ba", "abb"};
  const auto accept_first = cached.accepts(spec, words);
  EXPECT_EQ(accept_first, cached.accepts(spec, words));
  EXPECT_EQ(accept_first, cold.accepts(spec, words));

  const CacheStats stats = cached.cache_stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(ResultCache, ClosureKeyCanonicalizesSourcesAndIgnoresThreads) {
  const TimeVaryingGraph g = test_graph(3);
  const QueryEngine engine(g);
  ClosureQuery all_implicit;
  all_implicit.limits = SearchLimits::up_to(100);
  all_implicit.threads = 1;
  const ClosureResult first = engine.closure(all_implicit);

  ClosureQuery all_explicit = all_implicit;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    all_explicit.sources.push_back(v);
  }
  all_explicit.threads = 2;  // scheduling knob: not part of the key
  const ClosureResult second = engine.closure(all_explicit);
  EXPECT_EQ(first, second);
  const CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsedAtCapacity) {
  const TimeVaryingGraph g = test_graph(4);
  CacheConfig config;
  config.capacity = 4;
  config.shards = 1;  // one stripe so the LRU order is global
  const QueryEngine engine(g, 1, config);
  for (NodeId target = 0; target < 8; ++target) {
    (void)engine.run(JourneyQuery::foremost(0, 0).to(target));
  }
  CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.evictions, 4u);
  EXPECT_EQ(stats.misses, 8u);
  // Targets 4..7 are resident (hits); 0..3 were evicted (misses again).
  for (NodeId target = 4; target < 8; ++target) {
    (void)engine.run(JourneyQuery::foremost(0, 0).to(target));
  }
  stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.misses, 8u);
  for (NodeId target = 0; target < 4; ++target) {
    (void)engine.run(JourneyQuery::foremost(0, 0).to(target));
  }
  stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.misses, 12u);
  EXPECT_EQ(stats.entries, 4u);
}

TEST(ResultCache, ByteBudgetEvictsLruTail) {
  // Store-level check of the byte-weighted accounting: with a budget of
  // 100 bytes on one shard, 30-byte entries fit three at a time and a
  // fourth insert evicts the least recently used.
  CacheConfig config;
  config.capacity = 64;  // entry count never binds in this test
  config.max_bytes = 100;
  config.shards = 1;
  ResultCache cache(config);
  const auto generation = ResultCache::next_generation();
  auto key_for = [](NodeId target) {
    return QueryKey::journey(JourneyQuery::foremost(0, 0).to(target));
  };
  auto value = std::make_shared<const int>(7);
  for (NodeId target = 0; target < 3; ++target) {
    cache.insert(key_for(target), generation, value, 30);
  }
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.bytes, 90u);
  EXPECT_EQ(stats.evictions, 0u);
  cache.insert(key_for(3), generation, value, 30);  // 120 > 100: evict one
  stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.bytes, 90u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(cache.find(key_for(0), generation), nullptr);  // the LRU tail
  EXPECT_NE(cache.find(key_for(3), generation), nullptr);
  // A single value over the whole shard budget is rejected outright —
  // caching it would wipe the shard and still not fit.
  cache.insert(key_for(4), generation, value, 101);
  stats = cache.stats();
  EXPECT_EQ(stats.oversized_rejects, 1u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(cache.find(key_for(4), generation), nullptr);
  // A refresh that grows an entry re-balances the budget.
  cache.insert(key_for(3), generation, value, 80);  // 80 + 2*30 > 100
  stats = cache.stats();
  EXPECT_LE(stats.bytes, 100u);
  EXPECT_NE(cache.find(key_for(3), generation), nullptr);
}

TEST(ResultCache, ByteBudgetBoundsClosureHeavyEngines) {
  // Engine-level: distinct closure queries produce multi-row snapshots
  // far heavier than one journey entry; a byte budget keeps the resident
  // set bounded where the default count-based accounting would happily
  // hold `capacity` of them.
  const TimeVaryingGraph g = test_graph(6);
  const std::size_t row_block =
      g.node_count() * g.node_count() * sizeof(Time);
  CacheConfig config;
  config.capacity = 1024;
  config.max_bytes = 4 * row_block;  // room for a few closures, not 64
  config.shards = 1;
  const QueryEngine engine(g, 1, config);
  for (Time t0 = 0; t0 < 64; ++t0) {
    ClosureQuery q;
    q.start_time = t0;
    q.limits = SearchLimits::up_to(200);
    (void)engine.closure(q);
  }
  const CacheStats stats = engine.cache_stats();
  EXPECT_LE(stats.bytes, config.max_bytes);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_LT(stats.entries, 64u);
  // Count-based default (max_bytes = 0): all 64 closures stay resident
  // and no byte accounting is reported.
  const QueryEngine unbounded(g, 1, CacheConfig{});
  for (Time t0 = 0; t0 < 64; ++t0) {
    ClosureQuery q;
    q.start_time = t0;
    q.limits = SearchLimits::up_to(200);
    (void)unbounded.closure(q);
  }
  EXPECT_EQ(unbounded.cache_stats().entries, 64u);
  EXPECT_EQ(unbounded.cache_stats().bytes, 0u);
}

TEST(ResultCache, ClearDropsEntriesAndKeepsCounters) {
  const TimeVaryingGraph g = test_graph(5);
  const QueryEngine engine(g);
  (void)engine.run(JourneyQuery::foremost(0, 0).to(1));
  ASSERT_EQ(engine.cache_stats().entries, 1u);
  engine.clear_cache();
  CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.misses, 1u);
  (void)engine.run(JourneyQuery::foremost(0, 0).to(1));
  EXPECT_EQ(engine.cache_stats().misses, 2u);
}

TEST(ResultCache, GenerationMismatchDropsEntry) {
  // Direct store-level check of the staleness guard: an entry stamped by
  // one generation is never served to another, even for an equal key.
  const TimeVaryingGraph g = test_graph(6);
  ResultCache cache(CacheConfig{});
  const auto gen_a = ResultCache::next_generation();
  const auto gen_b = ResultCache::next_generation();
  ASSERT_NE(gen_a, gen_b);
  const QueryKey key = QueryKey::journey(JourneyQuery::foremost(0, 0).to(1));
  cache.insert(key, gen_a, std::make_shared<const int>(42));
  ASSERT_NE(cache.find(key, gen_a), nullptr);
  EXPECT_EQ(cache.find(key, gen_b), nullptr);  // dropped on sight
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.generation_drops, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(cache.find(key, gen_a), nullptr);  // really gone
}

TEST(ResultCache, QueryKeyDistinguishesQueriesAndWordOrder) {
  const auto base = JourneyQuery::foremost(0, 0).to(1);
  EXPECT_EQ(QueryKey::journey(base), QueryKey::journey(base));
  auto other = base;
  other.start_time = 1;
  EXPECT_FALSE(QueryKey::journey(base) == QueryKey::journey(other));
  auto shortest = JourneyQuery::shortest(0, 1, 0);
  EXPECT_FALSE(QueryKey::journey(base) == QueryKey::journey(shortest));

  // Non-semantic fields are canonicalized away: depart_hi is only read
  // by kFastest, Policy::bound only by kBoundedWait.
  auto stale_window = base;
  stale_window.depart_hi = 30;  // e.g. a struct reused from a fastest run
  EXPECT_EQ(QueryKey::journey(base), QueryKey::journey(stale_window));
  auto fastest_a = JourneyQuery::fastest(0, 1, 0, 20);
  auto fastest_b = JourneyQuery::fastest(0, 1, 0, 30);
  EXPECT_FALSE(QueryKey::journey(fastest_a) == QueryKey::journey(fastest_b));
  auto stale_bound = base;  // base's policy is the default Policy::wait()
  stale_bound.policy = Policy{WaitingPolicy::kWait, /*bound=*/7};
  EXPECT_EQ(QueryKey::journey(base), QueryKey::journey(stale_bound));

  AcceptSpec spec;
  spec.initial = {0};
  spec.accepting = {1};
  const std::vector<Word> ab{"a", "b"};
  const std::vector<Word> ba{"b", "a"};
  const std::vector<Word> joined{"ab"};
  EXPECT_EQ(QueryKey::accept(spec, ab), QueryKey::accept(spec, ab));
  EXPECT_FALSE(QueryKey::accept(spec, ab) == QueryKey::accept(spec, ba));
  // Length prefixes keep ["a","b"] distinct from ["ab"].
  EXPECT_FALSE(QueryKey::accept(spec, ab) == QueryKey::accept(spec, joined));
}

TEST(ResultCache, StructHashesAreConsistentWithEquality) {
  const auto q1 = JourneyQuery::fastest(0, 1, 2, 9).under(Policy::wait());
  auto q2 = q1;
  EXPECT_EQ(q1, q2);
  EXPECT_EQ(std::hash<JourneyQuery>{}(q1), std::hash<JourneyQuery>{}(q2));
  q2.depart_hi = 10;
  EXPECT_FALSE(q1 == q2);

  const Policy p1 = Policy::bounded_wait(4);
  EXPECT_EQ(std::hash<Policy>{}(p1), std::hash<Policy>{}(Policy::bounded_wait(4)));
  EXPECT_NE(std::hash<Policy>{}(Policy::wait()),
            std::hash<Policy>{}(Policy::no_wait()));

  const SearchLimits l1 = SearchLimits::up_to(100);
  EXPECT_EQ(l1, SearchLimits::up_to(100));
  EXPECT_EQ(std::hash<SearchLimits>{}(l1),
            std::hash<SearchLimits>{}(SearchLimits::up_to(100)));

  AcceptSpec s1;
  s1.initial = {0, 2};
  AcceptSpec s2 = s1;
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(std::hash<AcceptSpec>{}(s1), std::hash<AcceptSpec>{}(s2));

  ClosureQuery c1;
  c1.sources = {3, 1};
  ClosureQuery c2 = c1;
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(std::hash<ClosureQuery>{}(c1), std::hash<ClosureQuery>{}(c2));
}

TEST(ResultCache, ConcurrentHotKeyHammeringIsSafeAndConsistent) {
  const TimeVaryingGraph g = test_graph(7);
  const QueryEngine engine(g);
  const QueryEngine cold(g, 1, CacheConfig::disabled());
  const auto hot = JourneyQuery::foremost(0, 0).under(Policy::wait());
  const JourneyResult expected = cold.run(hot);
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<int> mismatches(kThreads, 0);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < kIters; ++i) {
          // One cold-able side query per thread keeps insert/evict/find
          // interleavings in play alongside the hot key.
          if (i % 16 == 0) {
            (void)engine.run(JourneyQuery::foremost(
                static_cast<NodeId>(t % 4), i % 8));
          }
          if (!(engine.run(hot) == expected)) ++mismatches[t];
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << t;
  const CacheStats stats = engine.cache_stats();
  EXPECT_GE(stats.hits, static_cast<std::uint64_t>(kThreads * kIters / 2));
}

TEST(ResultCache, StatsSnapshotsAreConsistentUnderConcurrentTraffic) {
  // Regression guard for cache_stats() during traffic: each shard's
  // counters are snapshotted under that shard's lock, so a concurrent
  // reader must never observe torn or non-monotone aggregates (e.g. a
  // hit counted before its lookup, or totals that go backwards between
  // two stats() calls).
  const TimeVaryingGraph g = test_graph(9);
  CacheConfig config;
  config.capacity = 32;  // small: concurrent evictions stay in play
  config.shards = 4;
  const QueryEngine engine(g, 1, config);
  constexpr int kWriters = 6;
  constexpr int kIters = 300;

  // Every engine.run below counts here BEFORE the lookup it causes, so
  // at any instant issued >= hits + misses seen by a stats() reader.
  std::atomic<std::uint64_t> issued{0};
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};

  std::thread reader([&] {
    CacheStats last;
    while (!done.load(std::memory_order_acquire)) {
      const CacheStats now = engine.cache_stats();
      const bool monotone = now.hits >= last.hits &&
                            now.misses >= last.misses &&
                            now.evictions >= last.evictions;
      if (!monotone) violations.fetch_add(1, std::memory_order_relaxed);
      if (now.hits + now.misses > issued.load(std::memory_order_acquire)) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
      last = now;
      std::this_thread::yield();
    }
  });
  {
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int t = 0; t < kWriters; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < kIters; ++i) {
          const auto q = JourneyQuery::foremost(
              static_cast<NodeId>((t + i) % 8), i % 6);
          issued.fetch_add(1, std::memory_order_release);
          (void)engine.run(q);
        }
      });
    }
    for (std::thread& w : writers) w.join();
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(violations.load(), 0);
  // Quiescent accounting: every issued lookup is exactly one hit or one
  // miss, and the entry count respects capacity.
  const CacheStats final_stats = engine.cache_stats();
  EXPECT_EQ(final_stats.hits + final_stats.misses, issued.load());
  EXPECT_EQ(issued.load(), std::uint64_t{kWriters} * kIters);
  EXPECT_LE(final_stats.entries, config.capacity);
}

TEST(ResultCache, CachingAndUncachedEnginesAgreeOnRandomStreams) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const TimeVaryingGraph g = test_graph(10 + seed);
    CacheConfig small;
    small.capacity = 16;  // force evictions mid-stream
    small.shards = 2;
    const QueryEngine cached(g, 1, small);
    const QueryEngine cold(g, 1, CacheConfig::disabled());

    std::mt19937_64 rng(seed * 77);
    // A pool of 24 distinct queries, sampled with heavy repetition.
    std::vector<JourneyQuery> pool;
    for (int i = 0; i < 24; ++i) {
      const auto src = static_cast<NodeId>(rng() % g.node_count());
      const auto dst = static_cast<NodeId>(rng() % g.node_count());
      const Time t0 = static_cast<Time>(rng() % 10);
      const Policy policy = (i % 3 == 0)   ? Policy::wait()
                            : (i % 3 == 1) ? Policy::no_wait()
                                           : Policy::bounded_wait(i % 5);
      switch (i % 4) {
        case 0:
          pool.push_back(JourneyQuery::foremost(src, t0).under(policy));
          break;
        case 1:
          pool.push_back(JourneyQuery::foremost(src, t0).to(dst).under(policy));
          break;
        case 2:
          pool.push_back(JourneyQuery::shortest(src, dst, t0).under(policy));
          break;
        default:
          pool.push_back(
              JourneyQuery::fastest(src, dst, t0, t0 + 15).under(policy));
          break;
      }
      pool.back().within(SearchLimits::up_to(80));
    }
    for (int step = 0; step < 300; ++step) {
      const JourneyQuery& q = pool[rng() % pool.size()];
      EXPECT_EQ(cached.run(q), cold.run(q)) << "seed=" << seed
                                            << " step=" << step;
    }
    // Interleave the other entry points through the same small cache.
    ClosureQuery cq;
    cq.limits = SearchLimits::up_to(80);
    EXPECT_EQ(cached.closure(cq), cold.closure(cq));
    EXPECT_EQ(cached.closure(cq), cold.closure(cq));
    const CacheStats stats = cached.cache_stats();
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.evictions, 0u);
  }
}

TEST(ResultCache, InvalidateKeysTouchingDropsByFootprintOnly) {
  // Store-level check of the per-edge invalidation contract: an entry
  // dies iff its footprint intersects a touched endpoint's partition.
  ResultCache cache(CacheConfig{});
  const auto generation = ResultCache::next_generation();
  auto key_for = [](NodeId target) {
    return QueryKey::journey(JourneyQuery::foremost(0, 0).to(target));
  };
  auto value = std::make_shared<const int>(1);
  cache.insert(key_for(0), generation, value, 1,
               footprint_bit(0) | footprint_bit(1));
  cache.insert(key_for(1), generation, value, 1,
               footprint_bit(2) | footprint_bit(3));
  cache.insert(key_for(2), generation, value, 1, kFootprintAll);
  ASSERT_EQ(cache.stats().entries, 3u);

  const EdgeTouch touch{/*edge=*/5, /*from=*/2, /*to=*/3};
  cache.invalidate_keys_touching({&touch, 1});
  CacheStats stats = cache.stats();
  // {2,3} intersects, kFootprintAll intersects everything, {0,1} survives.
  EXPECT_EQ(stats.invalidations, 2u);
  EXPECT_EQ(stats.survivors, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_NE(cache.find(key_for(0), generation), nullptr);
  EXPECT_EQ(cache.find(key_for(1), generation), nullptr);
  EXPECT_EQ(cache.find(key_for(2), generation), nullptr);

  // Partitions alias mod 64: node 65 lands in partition 1, so the {0,1}
  // entry is (conservatively, correctly) dropped by a far-away edge.
  const EdgeTouch aliased{/*edge=*/6, /*from=*/65, /*to=*/70};
  cache.invalidate_keys_touching({&aliased, 1});
  EXPECT_EQ(cache.find(key_for(0), generation), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 3u);
}

TEST(ResultCache, ConcurrentInvalidationUnderTrafficIsSafeAndAccounted) {
  // Regression: invalidate_keys_touching walks whole shards while other
  // threads insert and find. Run under TSan in CI; the quiescent
  // accounting below catches lost updates either way.
  CacheConfig config;
  config.shards = 4;
  config.capacity = 4096;  // never binds: evictions stay out of the way
  ResultCache cache(config);
  const auto generation = ResultCache::next_generation();
  constexpr int kWriters = 4;
  constexpr int kIters = 400;
  std::atomic<bool> stop{false};

  std::thread invalidator([&] {
    std::mt19937_64 rng(99);
    while (!stop.load(std::memory_order_acquire)) {
      const auto v = static_cast<NodeId>(rng() % 64);
      const EdgeTouch touch{0, v, static_cast<NodeId>((v + 1) % 64)};
      cache.invalidate_keys_touching({&touch, 1});
      std::this_thread::yield();
    }
  });
  {
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int t = 0; t < kWriters; ++t) {
      writers.emplace_back([&, t] {
        auto value = std::make_shared<const int>(t);
        for (int i = 0; i < kIters; ++i) {
          // Unique key per insert: a refresh would break the quiescent
          // accounting below.
          const auto target = static_cast<NodeId>(t * kIters + i);
          const QueryKey key =
              QueryKey::journey(JourneyQuery::foremost(0, 0).to(target));
          cache.insert(key, generation, value, 1,
                       footprint_bit(target) | footprint_bit(0));
          (void)cache.find(key, generation);
        }
      });
    }
    for (std::thread& w : writers) w.join();
  }
  stop.store(true, std::memory_order_release);
  invalidator.join();

  // Nothing was evicted or generation-dropped, so every entry ever
  // inserted is either resident now or was invalidated; survivors count
  // inspections, never entries, so they can only exceed residents.
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.generation_drops, 0u);
  EXPECT_EQ(stats.entries + stats.invalidations,
            std::uint64_t{kWriters} * kIters);
}

TEST(ResultCache, BatchRunServesHitsAndComputesMisses) {
  const TimeVaryingGraph g = test_graph(20);
  const QueryEngine engine(g);
  std::vector<JourneyQuery> queries;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    queries.push_back(JourneyQuery::foremost(0, 0).to(v));
  }
  // Warm half the batch through single runs.
  for (std::size_t i = 0; i < queries.size() / 2; ++i) {
    (void)engine.run(queries[i]);
  }
  const auto warm_misses = engine.cache_stats().misses;
  const auto batched = engine.run(queries, /*threads=*/2);
  const CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, warm_misses + queries.size() - queries.size() / 2);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batched[i], engine.run(queries[i])) << i;
  }
}

}  // namespace
