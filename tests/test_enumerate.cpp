// Journey enumeration as the brute-force referee: the acceptance search,
// the foremost optimizer, and validate_journey must all agree with it on
// small graphs.
#include <gtest/gtest.h>

#include "core/tvg_automaton.hpp"
#include "tvg/enumerate.hpp"
#include "tvg/generators.hpp"

namespace tvg {
namespace {

TEST(Enumerate, EveryEnumeratedJourneyValidates) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RandomScheduledParams params;
    params.nodes = 5;
    params.edges = 14;
    params.horizon = 24;
    params.seed = seed;
    const TimeVaryingGraph g = make_random_scheduled(params);
    for (const Policy policy :
         {Policy::no_wait(), Policy::bounded_wait(3), Policy::wait()}) {
      EnumerateOptions opt;
      opt.max_hops = 3;
      opt.horizon = 60;
      for (const Journey& j : enumerate_journeys(g, 0, 0, policy, opt)) {
        const auto v = validate_journey(g, j, policy);
        EXPECT_TRUE(v.ok) << "seed=" << seed << " "
                          << policy.to_string() << " " << v.reason;
      }
    }
  }
}

TEST(Enumerate, HopOrderAndEmptyJourneyFirst) {
  TimeVaryingGraph g;
  g.add_nodes(2);
  g.add_static_edge(0, 1, 'a');
  g.add_static_edge(1, 0, 'b');
  EnumerateOptions opt;
  opt.max_hops = 3;
  opt.departures_per_edge = 1;
  const auto journeys = enumerate_journeys(g, 0, 0, Policy::no_wait(), opt);
  ASSERT_FALSE(journeys.empty());
  EXPECT_TRUE(journeys.front().empty());
  for (std::size_t i = 1; i < journeys.size(); ++i) {
    EXPECT_LE(journeys[i - 1].hops(), journeys[i].hops());
  }
  // Deterministic static graph: exactly one journey per hop count.
  EXPECT_EQ(journeys.size(), 4u);
}

TEST(Enumerate, AgreesWithForemostArrival) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RandomScheduledParams params;
    params.nodes = 5;
    params.edges = 16;
    params.horizon = 20;
    params.seed = seed + 100;
    const TimeVaryingGraph g = make_random_scheduled(params);
    EnumerateOptions opt;
    opt.max_hops = 4;
    opt.horizon = 50;
    SearchLimits limits;
    limits.horizon = 50;
    const auto journeys =
        enumerate_journeys(g, 0, 0, Policy::no_wait(), opt);
    const ForemostTree tree =
        foremost_arrivals(g, 0, 0, Policy::no_wait(), limits);
    // Brute-force earliest arrival per node (within the hop bound) can
    // never beat the search's answer.
    std::vector<Time> brute(g.node_count(), kTimeInfinity);
    for (const Journey& j : journeys) {
      const NodeId end = j.end_node(g);
      brute[end] = std::min(brute[end], j.arrival(g));
    }
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_LE(tree.arrival[v], brute[v]) << "seed=" << seed << " v=" << v;
      // And within 4 hops they usually coincide; verify consistency when
      // the search's witness fits the hop bound.
      if (const auto j = tree.journey_to(g, v); j && j->hops() <= 4) {
        EXPECT_EQ(tree.arrival[v], brute[v])
            << "seed=" << seed << " v=" << v;
      }
    }
  }
}

TEST(Enumerate, AgreesWithAcceptanceOnWords) {
  // The set of words spelled by enumerated accepting journeys equals the
  // language reported by the acceptance search (same hop/horizon caps).
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RandomScheduledParams params;
    params.nodes = 4;
    params.edges = 12;
    params.horizon = 16;
    params.seed = seed + 7;
    const TimeVaryingGraph g = make_random_scheduled(params);
    core::TvgAutomaton a(g, 0);
    a.set_initial(0);
    a.set_accepting(2);
    EnumerateOptions opt;
    opt.max_hops = 3;
    opt.horizon = 40;
    std::set<Word> from_enumeration;
    for (const Journey& j :
         enumerate_journeys(g, 0, 0, Policy::no_wait(), opt)) {
      if (j.end_node(g) == 2) from_enumeration.insert(j.word(g));
    }
    core::AcceptOptions aopt;
    aopt.horizon = 40;
    const auto lang = a.enumerate_language(3, Policy::no_wait(), aopt);
    const std::set<Word> from_search(lang.begin(), lang.end());
    EXPECT_EQ(from_enumeration, from_search) << "seed=" << seed;
  }
}

TEST(Enumerate, CapIsRespected) {
  TimeVaryingGraph g;
  g.add_nodes(2);
  g.add_static_edge(0, 1, 'a');
  g.add_static_edge(1, 0, 'a');
  EnumerateOptions opt;
  opt.max_hops = 30;
  opt.max_journeys = 10;
  EXPECT_EQ(enumerate_journeys(g, 0, 0, Policy::no_wait(), opt).size(),
            10u);
}

}  // namespace
}  // namespace tvg
