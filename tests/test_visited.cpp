// Tests for the exact visited-state bookkeeping of the journey search
// engine (visited.hpp), plus a regression locking config_bfs to exact
// (node, time) dedup: the seed engine inserted only a 64-bit *hash* of
// each configuration into its visited set, so a collision could silently
// drop a reachable configuration and corrupt reachability under NoWait /
// BoundedWait.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "tvg/algorithms.hpp"
#include "tvg/generators.hpp"
#include "tvg/journey.hpp"
#include "tvg/visited.hpp"

namespace tvg {
namespace {

TEST(ConfigVisitedSet, InsertIsExactAndIdempotent) {
  ConfigVisitedSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.insert(3, 7));
  EXPECT_FALSE(set.insert(3, 7));
  EXPECT_TRUE(set.insert(3, 8));
  EXPECT_TRUE(set.insert(4, 7));
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(3, 7));
  EXPECT_TRUE(set.contains(3, 8));
  EXPECT_TRUE(set.contains(4, 7));
  EXPECT_FALSE(set.contains(4, 8));
  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.contains(3, 7));
}

TEST(ConfigVisitedSet, PackIsInjectiveOnDomainCorners) {
  const NodeId vmax = ConfigVisitedSet::kMaxPackedNode;
  const Time tmax = ConfigVisitedSet::kMaxPackedTime;
  EXPECT_TRUE(ConfigVisitedSet::packable(0, 0));
  EXPECT_TRUE(ConfigVisitedSet::packable(vmax, tmax));
  EXPECT_FALSE(ConfigVisitedSet::packable(vmax + 1, 0));
  EXPECT_FALSE(ConfigVisitedSet::packable(0, tmax + 1));
  EXPECT_FALSE(ConfigVisitedSet::packable(0, Time{-1}));
  EXPECT_FALSE(ConfigVisitedSet::packable(0, kTimeInfinity));

  std::set<std::uint64_t> keys;
  for (NodeId v : {NodeId{0}, NodeId{1}, vmax}) {
    for (Time t : {Time{0}, Time{1}, tmax}) {
      keys.insert(ConfigVisitedSet::pack(v, t));
    }
  }
  EXPECT_EQ(keys.size(), 9u);
}

TEST(ConfigVisitedSet, AliasingPairsBeyondPackedRangeStayDistinct) {
  // (1, 0) packs to 1 << 40. Without the range guard, (0, 1 << 40) would
  // produce the same key — the injected-collision shape the hash-only
  // seed dedup could never rule out. Both must stay distinct members.
  ConfigVisitedSet set;
  const Time aliasing_time = Time{1} << ConfigVisitedSet::kPackedTimeBits;
  EXPECT_TRUE(set.insert(1, 0));
  EXPECT_TRUE(set.insert(0, aliasing_time));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(1, 0));
  EXPECT_TRUE(set.contains(0, aliasing_time));
  EXPECT_FALSE(set.contains(1, aliasing_time));
  EXPECT_FALSE(set.contains(0, Time{0}));

  // Node ids beyond the packed range take the fallback path and stay
  // exact and idempotent there too.
  const NodeId big = ConfigVisitedSet::kMaxPackedNode + 1;
  EXPECT_TRUE(set.insert(big, 5));
  EXPECT_FALSE(set.insert(big, 5));
  EXPECT_TRUE(set.insert(big, 6));
  EXPECT_TRUE(set.contains(big, 5));
  EXPECT_FALSE(set.contains(big, 7));
  EXPECT_EQ(set.size(), 4u);
}

TEST(ConfigVisitedSet, DenseGridIsExact) {
  ConfigVisitedSet set;
  constexpr NodeId kNodes = 64;
  constexpr Time kTimes = 512;
  for (NodeId v = 0; v < kNodes; ++v) {
    for (Time t = 0; t < kTimes; ++t) {
      ASSERT_TRUE(set.insert(v, t)) << "dropped (" << v << ", " << t << ")";
    }
  }
  EXPECT_EQ(set.size(), static_cast<std::size_t>(kNodes) * kTimes);
  for (NodeId v = 0; v < kNodes; ++v) {
    for (Time t = 0; t < kTimes; ++t) {
      ASSERT_FALSE(set.insert(v, t)) << "re-admitted (" << v << ", " << t
                                     << ")";
    }
  }
}

TEST(ConfigAdmission, ClampsHorizonAndRejectsSentinel) {
  ConfigAdmission adm(10);
  EXPECT_TRUE(adm.admit(0, 10));
  EXPECT_FALSE(adm.admit(0, 11));
  EXPECT_FALSE(adm.admit(0, kTimeInfinity));
  EXPECT_FALSE(adm.admit(0, 10));  // already visited
  EXPECT_TRUE(adm.admit(1, 10));
  EXPECT_EQ(adm.visited().size(), 2u);
}

TEST(ConfigAdmission, InfiniteHorizonStillRejectsSentinel) {
  ConfigAdmission adm(kTimeInfinity);
  EXPECT_TRUE(adm.admit(0, kTimeInfinity - 1));
  EXPECT_FALSE(adm.admit(0, kTimeInfinity));
  EXPECT_EQ(adm.visited().size(), 1u);
}

// Regression for the exact-visited-set fix: force many distinct
// (node, time) configurations through config_bfs (dense periodic
// schedules under BoundedWait) and check its arrivals against the
// Wait-policy Dijkstra path, which never relies on config dedup. With the
// waiting bound set to the full horizon the two policies admit the same
// journeys inside the window, so any disagreement means the BFS dropped
// or duplicated a configuration.
TEST(ConfigBfsRegression, BoundedWaitAgreesWithWaitDijkstra) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RandomPeriodicParams params;
    params.nodes = 12;
    params.edges = 48;
    params.period = 6;
    params.density = 0.6;
    params.max_latency = 1;
    params.seed = seed;
    const TimeVaryingGraph g = make_random_periodic(params);
    ASSERT_TRUE(g.all_constant_latency());

    SearchLimits limits;
    limits.horizon = 64;
    const Policy bounded = Policy::bounded_wait(limits.horizon);

    for (NodeId src = 0; src < g.node_count(); ++src) {
      const ForemostTree bfs = foremost_arrivals(g, src, 0, bounded, limits);
      const ForemostTree dij =
          foremost_arrivals(g, src, 0, Policy::wait(), limits);
      ASSERT_FALSE(bfs.truncated) << "seed=" << seed << " src=" << src;
      ASSERT_FALSE(dij.truncated) << "seed=" << seed << " src=" << src;
      for (NodeId v = 0; v < g.node_count(); ++v) {
        EXPECT_EQ(bfs.arrival[v], dij.arrival[v])
            << "seed=" << seed << " src=" << src << " node=" << v;
        if (bfs.arrival[v] == kTimeInfinity) continue;
        const auto j = bfs.journey_to(g, v);
        ASSERT_TRUE(j.has_value())
            << "seed=" << seed << " src=" << src << " node=" << v;
        const auto valid = validate_journey(g, *j, bounded);
        EXPECT_TRUE(valid.ok)
            << "seed=" << seed << " src=" << src << " node=" << v << ": "
            << valid.reason;
        if (v != src) {
          EXPECT_EQ(j->arrival(g), bfs.arrival[v])
              << "seed=" << seed << " src=" << src << " node=" << v;
        }
      }
    }
  }
}

// The explored configuration list itself must be duplicate-free: under
// exact dedup every (node, time) appears at most once.
TEST(ConfigBfsRegression, ExploredConfigsAreDuplicateFree) {
  RandomPeriodicParams params;
  params.nodes = 10;
  params.edges = 40;
  params.period = 5;
  params.density = 0.7;
  params.max_latency = 1;
  params.seed = 42;
  const TimeVaryingGraph g = make_random_periodic(params);

  SearchLimits limits;
  limits.horizon = 96;
  const ForemostTree tree =
      foremost_arrivals(g, 0, 0, Policy::bounded_wait(7), limits);
  ASSERT_FALSE(tree.truncated);

  std::set<std::pair<NodeId, Time>> seen;
  for (const auto& c : tree.configs) {
    EXPECT_TRUE(seen.emplace(c.node, c.time).second)
        << "duplicate config (" << c.node << ", " << c.time << ")";
  }
  EXPECT_GT(seen.size(), g.node_count());  // genuinely many configs/node
}

}  // namespace
}  // namespace tvg
