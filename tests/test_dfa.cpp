// Unit tests for the DFA substrate: subset construction, minimization,
// boolean algebra, equivalence with witnesses, census counting.
#include <gtest/gtest.h>

#include "fa/dfa.hpp"
#include "fa/regex.hpp"

namespace tvg::fa {
namespace {

TEST(Dfa, DeterminizeAgreesWithNfa) {
  const Nfa n = parse_regex("(a|b)*abb");
  const Dfa d = Dfa::determinize(n);
  for (const char* w : {"abb", "aabb", "babb", "ababb", "abab", "", "abba"}) {
    EXPECT_EQ(d.accepts(w), n.accepts(w)) << w;
  }
}

TEST(Dfa, DeterminizeEmptyNfa) {
  const Dfa d = Dfa::determinize(Nfa::empty_lang("ab"));
  EXPECT_TRUE(d.empty_language());
  EXPECT_FALSE(d.accepts(""));
}

TEST(Dfa, MinimizedIsCanonicallySmall) {
  // (a|b)*abb has the classic 4-state minimal DFA.
  const Dfa d = Dfa::determinize(parse_regex("(a|b)*abb"));
  const Dfa m = d.minimized();
  EXPECT_EQ(m.state_count(), 4u);
  for (const char* w : {"abb", "aabb", "ab", "abbb", ""}) {
    EXPECT_EQ(m.accepts(w), d.accepts(w)) << w;
  }
}

TEST(Dfa, MinimizationIsIdempotent) {
  const Dfa m = regex_to_min_dfa("a(ba)*|b");
  EXPECT_EQ(m.minimized().state_count(), m.state_count());
}

TEST(Dfa, MinimizeAllAcceptingCollapses) {
  const Dfa d = Dfa::determinize(parse_regex("(a|b)*"));
  EXPECT_EQ(d.minimized().state_count(), 1u);
}

TEST(Dfa, ComplementFlipsMembership) {
  const Dfa d = regex_to_min_dfa("a*b");
  const Dfa c = d.complemented();
  for (const char* w : {"b", "ab", "aab", "", "a", "ba"}) {
    EXPECT_NE(d.accepts(w), c.accepts(w)) << w;
  }
}

TEST(Dfa, ProductIntersection) {
  const Dfa even_a = regex_to_min_dfa("(b*ab*ab*)*|b*", "ab");
  const Dfa ends_b = regex_to_min_dfa("(a|b)*b", "ab");
  const Dfa both = Dfa::product(even_a, ends_b,
                                Dfa::ProductMode::kIntersection);
  EXPECT_TRUE(both.accepts("aab"));
  EXPECT_TRUE(both.accepts("b"));
  EXPECT_FALSE(both.accepts("ab"));   // odd a's
  EXPECT_FALSE(both.accepts("aa"));   // doesn't end in b
}

TEST(Dfa, ProductUnionAndDifference) {
  const Dfa a = regex_to_min_dfa("aa*", "ab");
  const Dfa b = regex_to_min_dfa("bb*", "ab");
  const Dfa u = Dfa::product(a, b, Dfa::ProductMode::kUnion);
  EXPECT_TRUE(u.accepts("a"));
  EXPECT_TRUE(u.accepts("bb"));
  EXPECT_FALSE(u.accepts("ab"));
  const Dfa diff = Dfa::product(u, b, Dfa::ProductMode::kDifference);
  EXPECT_TRUE(diff.accepts("a"));
  EXPECT_FALSE(diff.accepts("b"));
}

TEST(Dfa, DeMorganHolds) {
  const Dfa a = regex_to_min_dfa("(ab)*", "ab");
  const Dfa b = regex_to_min_dfa("a*", "ab");
  // ¬(A ∪ B) == ¬A ∩ ¬B
  const Dfa lhs =
      Dfa::product(a, b, Dfa::ProductMode::kUnion).complemented();
  const Dfa rhs = Dfa::product(a.complemented(), b.complemented(),
                               Dfa::ProductMode::kIntersection);
  EXPECT_TRUE(Dfa::equivalent(lhs, rhs));
}

TEST(Dfa, EquivalenceWitnessIsShortest) {
  const Dfa a = regex_to_min_dfa("a*", "a");
  const Dfa b = regex_to_min_dfa("a?", "a");
  Word witness;
  EXPECT_FALSE(Dfa::equivalent(a, b, &witness));
  EXPECT_EQ(witness, "aa");  // shortest word in the symmetric difference
}

TEST(Dfa, EquivalenceAcrossDifferentAlphabets) {
  const Dfa a = regex_to_min_dfa("a*", "a");
  const Dfa b = regex_to_min_dfa("a*", "ab");
  // Same language, even though b's alphabet mentions 'b'.
  EXPECT_TRUE(Dfa::equivalent(a, b));
}

TEST(Dfa, InclusionWithWitness) {
  const Dfa small = regex_to_min_dfa("ab", "ab");
  const Dfa big = regex_to_min_dfa("a(a|b)*", "ab");
  EXPECT_TRUE(Dfa::included(small, big));
  Word witness;
  EXPECT_FALSE(Dfa::included(big, small, &witness));
  EXPECT_TRUE(big.accepts(witness));
  EXPECT_FALSE(small.accepts(witness));
}

TEST(Dfa, ShortestWordAndEmptiness) {
  EXPECT_EQ(regex_to_min_dfa("aab|b").shortest_word(), "b");
  const Dfa none = Dfa::product(regex_to_min_dfa("a", "ab"),
                                regex_to_min_dfa("b", "ab"),
                                Dfa::ProductMode::kIntersection);
  EXPECT_TRUE(none.empty_language());
}

TEST(Dfa, EnumerateMatchesAccepts) {
  const Dfa d = regex_to_min_dfa("a(ba)*", "ab");
  const auto words = d.enumerate(5);
  EXPECT_EQ(words, (std::vector<Word>{"a", "aba", "ababa"}));
}

TEST(Dfa, CensusCountsWithoutEnumerating) {
  const Dfa all = regex_to_min_dfa("(a|b)*", "ab");
  const auto counts = all.census(4);
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{1, 2, 4, 8, 16}));
  const Dfa anbn_ish = regex_to_min_dfa("ab|aabb", "ab");
  const auto c2 = anbn_ish.census(4);
  EXPECT_EQ(c2[2], 1u);
  EXPECT_EQ(c2[4], 1u);
  EXPECT_EQ(c2[3], 0u);
}

TEST(Dfa, ToNfaRoundTrip) {
  const Dfa d = regex_to_min_dfa("(ab|ba)*");
  const Dfa d2 = Dfa::determinize(d.to_nfa()).minimized();
  EXPECT_TRUE(Dfa::equivalent(d, d2));
}

TEST(Dfa, RejectsSymbolsOutsideAlphabet) {
  const Dfa d = regex_to_min_dfa("a*", "a");
  EXPECT_FALSE(d.accepts("ax"));
  EXPECT_THROW((void)d.transition(0, 'x'), std::invalid_argument);
}

TEST(Dfa, ToDotRenders) {
  const std::string dot = regex_to_min_dfa("ab").to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("__start"), std::string::npos);
}

}  // namespace
}  // namespace tvg::fa
