// Unit tests for the regex front-end.
#include <gtest/gtest.h>

#include "fa/regex.hpp"

namespace tvg::fa {
namespace {

TEST(Regex, Literals) {
  EXPECT_TRUE(regex_match("abc", "abc"));
  EXPECT_FALSE(regex_match("abc", "ab"));
  EXPECT_FALSE(regex_match("abc", "abcd"));
}

TEST(Regex, EmptyPatternIsEpsilon) {
  EXPECT_TRUE(regex_match("", ""));
  EXPECT_FALSE(regex_match("", "a"));
}

TEST(Regex, Alternation) {
  EXPECT_TRUE(regex_match("cat|dog", "cat"));
  EXPECT_TRUE(regex_match("cat|dog", "dog"));
  EXPECT_FALSE(regex_match("cat|dog", "cot"));
  EXPECT_TRUE(regex_match("a|b|c", "c"));
}

TEST(Regex, Repetitions) {
  EXPECT_TRUE(regex_match("ab*", "a"));
  EXPECT_TRUE(regex_match("ab*", "abbb"));
  EXPECT_FALSE(regex_match("ab+", "a"));
  EXPECT_TRUE(regex_match("ab+", "abb"));
  EXPECT_TRUE(regex_match("ab?", "a"));
  EXPECT_TRUE(regex_match("ab?", "ab"));
  EXPECT_FALSE(regex_match("ab?", "abb"));
}

TEST(Regex, GroupingAndNesting) {
  EXPECT_TRUE(regex_match("(ab)*", ""));
  EXPECT_TRUE(regex_match("(ab)*", "abab"));
  EXPECT_FALSE(regex_match("(ab)*", "aba"));
  EXPECT_TRUE(regex_match("((a|b)c)+", "acbc"));
  EXPECT_TRUE(regex_match("(a(b|c)*d)?", "abccbd"));
  EXPECT_TRUE(regex_match("(a(b|c)*d)?", ""));
}

TEST(Regex, DoubleStarParses) {
  EXPECT_TRUE(regex_match("a**", "aaa"));
  EXPECT_TRUE(regex_match("(a*)*", ""));
}

TEST(Regex, DotMatchesAlphabet) {
  EXPECT_TRUE(regex_match(".", "a", "ab"));
  EXPECT_TRUE(regex_match(".", "b", "ab"));
  EXPECT_FALSE(regex_match(".", "c", "ab"));
  EXPECT_TRUE(regex_match(".*abb", "bbabb", "ab"));
}

TEST(Regex, Escapes) {
  EXPECT_TRUE(regex_match("\\*", "*"));
  EXPECT_TRUE(regex_match("a\\|b", "a|b"));
  EXPECT_FALSE(regex_match("a\\|b", "a"));
  EXPECT_TRUE(regex_match("\\(\\)", "()"));
}

TEST(Regex, TheWaitCollapseLanguage) {
  // b⁺ | ab | a⁺bb⁺ — the language Figure 1 collapses to under Wait.
  const std::string pattern = "b+|ab|a+bb+";
  EXPECT_TRUE(regex_match(pattern, "b"));
  EXPECT_TRUE(regex_match(pattern, "bbb"));
  EXPECT_TRUE(regex_match(pattern, "ab"));
  EXPECT_TRUE(regex_match(pattern, "abb"));
  EXPECT_TRUE(regex_match(pattern, "aaabbbb"));
  EXPECT_FALSE(regex_match(pattern, "aab"));
  EXPECT_FALSE(regex_match(pattern, "a"));
  EXPECT_FALSE(regex_match(pattern, "ba"));
}

TEST(Regex, SyntaxErrorsThrow) {
  EXPECT_THROW(parse_regex("("), std::invalid_argument);
  EXPECT_THROW(parse_regex("a)"), std::invalid_argument);
  EXPECT_THROW(parse_regex("*a"), std::invalid_argument);
  EXPECT_THROW(parse_regex("a\\"), std::invalid_argument);
  EXPECT_THROW(parse_regex("a(b"), std::invalid_argument);
}

TEST(Regex, MinDfaPipeline) {
  const Dfa d = regex_to_min_dfa("(a|b)*abb");
  EXPECT_EQ(d.state_count(), 4u);
  EXPECT_TRUE(d.accepts("abb"));
}

}  // namespace
}  // namespace tvg::fa
