// Unit tests for the TVG-automaton acceptance machinery itself:
// configuration search, witnesses, nondeterminism, truncation, the
// inclusion lattice L_nowait ⊆ L_wait[d] ⊆ L_wait, and enumeration.
#include <gtest/gtest.h>

#include "core/expressivity.hpp"
#include "core/tvg_automaton.hpp"
#include "tvg/generators.hpp"

namespace tvg::core {
namespace {

// A two-edge relay: u -a-> v (presence [0,2)), v -b-> w (presence [8,10)).
TvgAutomaton make_relay_automaton() {
  TimeVaryingGraph g;
  const NodeId u = g.add_node("u");
  const NodeId v = g.add_node("v");
  const NodeId w = g.add_node("w");
  g.add_edge(u, v, 'a', Presence::intervals(IntervalSet::single(0, 2)),
             Latency::constant(1));
  g.add_edge(v, w, 'b', Presence::intervals(IntervalSet::single(8, 10)),
             Latency::constant(1));
  TvgAutomaton a(std::move(g), 0);
  a.set_initial(u);
  a.set_accepting(w);
  return a;
}

TEST(TvgAutomaton, PolicyTrichotomyOnTheRelay) {
  const TvgAutomaton a = make_relay_automaton();
  EXPECT_FALSE(a.accepts("ab", Policy::no_wait()).accepted);
  // Latest arrival at v is 2 (depart uv at 1), so d >= 6 bridges the gap
  // to the [8,10) window — bounded-wait feasibility is decided by the
  // best-timed journey, not the foremost one.
  EXPECT_FALSE(a.accepts("ab", Policy::bounded_wait(5)).accepted);
  EXPECT_TRUE(a.accepts("ab", Policy::bounded_wait(6)).accepted);
  EXPECT_TRUE(a.accepts("ab", Policy::wait()).accepted);
  EXPECT_FALSE(a.accepts("a", Policy::wait()).accepted);
  EXPECT_FALSE(a.accepts("b", Policy::wait()).accepted);
  EXPECT_FALSE(a.accepts("", Policy::wait()).accepted);
}

TEST(TvgAutomaton, EmptyWordNeedsAcceptingInitial) {
  TimeVaryingGraph g;
  const NodeId u = g.add_node();
  TvgAutomaton a(std::move(g), 0);
  a.set_initial(u);
  EXPECT_FALSE(a.accepts("", Policy::no_wait()).accepted);
  a.set_accepting(u);
  EXPECT_TRUE(a.accepts("", Policy::no_wait()).accepted);
  EXPECT_TRUE(a.accepts("", Policy::wait()).accepted);
  EXPECT_FALSE(a.accepts("a", Policy::wait()).accepted);
}

TEST(TvgAutomaton, WitnessesValidateUnderTheirPolicy) {
  const TvgAutomaton a = make_relay_automaton();
  for (const Policy policy : {Policy::wait(), Policy::bounded_wait(7)}) {
    const AcceptResult r = a.accepts("ab", policy);
    ASSERT_TRUE(r.accepted) << policy.to_string();
    ASSERT_TRUE(r.witness.has_value());
    EXPECT_TRUE(validate_journey(a.graph(), *r.witness, policy).ok);
    EXPECT_EQ(r.witness->word(a.graph()), "ab");
    EXPECT_EQ(r.witness->start_time, a.start_time());
  }
}

TEST(TvgAutomaton, NondeterministicChoiceIsAngelic) {
  // Two 'a' edges: one leads to a trap, one to acceptance; the automaton
  // must find the good one.
  TimeVaryingGraph g;
  const NodeId s = g.add_node();
  const NodeId trap = g.add_node();
  const NodeId good = g.add_node();
  g.add_edge(s, trap, 'a', Presence::always(), Latency::constant(1));
  g.add_edge(s, good, 'a', Presence::always(), Latency::constant(1));
  TvgAutomaton a(std::move(g), 0);
  a.set_initial(s);
  a.set_accepting(good);
  EXPECT_TRUE(a.accepts("a", Policy::no_wait()).accepted);
}

TEST(TvgAutomaton, MultipleInitialStates) {
  TimeVaryingGraph g;
  const NodeId s1 = g.add_node();
  const NodeId s2 = g.add_node();
  const NodeId f = g.add_node();
  g.add_edge(s2, f, 'a', Presence::always(), Latency::constant(1));
  TvgAutomaton a(std::move(g), 0);
  a.set_initial(s1);
  a.set_accepting(f);
  EXPECT_FALSE(a.accepts("a", Policy::no_wait()).accepted);
  a.set_initial(s2);
  EXPECT_TRUE(a.accepts("a", Policy::no_wait()).accepted);
  a.set_initial(s2, false);
  EXPECT_FALSE(a.accepts("a", Policy::no_wait()).accepted);
}

TEST(TvgAutomaton, StartTimeMatters) {
  TimeVaryingGraph g;
  const NodeId u = g.add_node();
  const NodeId v = g.add_node();
  g.add_edge(u, v, 'a', Presence::at_times({5}), Latency::constant(1));
  TvgAutomaton a(std::move(g), 0);
  a.set_initial(u);
  a.set_accepting(v);
  EXPECT_FALSE(a.accepts("a", Policy::no_wait()).accepted);
  a.set_start_time(5);
  EXPECT_TRUE(a.accepts("a", Policy::no_wait()).accepted);
  a.set_start_time(6);
  EXPECT_FALSE(a.accepts("a", Policy::no_wait()).accepted);
  EXPECT_FALSE(a.accepts("a", Policy::wait()).accepted);  // 5 is gone
}

TEST(TvgAutomaton, HorizonCutsOffDeepSearches) {
  const TvgAutomaton a = make_relay_automaton();
  AcceptOptions opt;
  opt.horizon = 7;  // vw presence (at 8) is beyond the horizon
  EXPECT_FALSE(a.accepts("ab", Policy::wait(), opt).accepted);
  opt.horizon = 9;
  EXPECT_TRUE(a.accepts("ab", Policy::wait(), opt).accepted);
}

TEST(TvgAutomaton, TruncationFlagOnTinyBudget) {
  TimeVaryingGraph g;
  g.add_nodes(3);
  for (NodeId u = 0; u < 3; ++u) {
    for (NodeId v = 0; v < 3; ++v) {
      g.add_edge(u, v, 'a', Presence::always(), Latency::constant(1));
    }
  }
  TvgAutomaton a(std::move(g), 0);
  a.set_initial(0);
  a.set_accepting(2);
  AcceptOptions opt;
  opt.max_configs = 2;
  const AcceptResult r = a.accepts("aaaa", Policy::bounded_wait(5), opt);
  EXPECT_TRUE(r.truncated);
  EXPECT_FALSE(r.accepted);
  // One expansion round may overshoot the cap, but only boundedly so.
  EXPECT_LE(r.configs_explored, 64u);
}

TEST(TvgAutomaton, BoundedWaitZeroEqualsNoWaitOnSamples) {
  const TvgAutomaton a = make_relay_automaton();
  for (const Word& w : all_words("ab", 5)) {
    EXPECT_EQ(a.accepts(w, Policy::no_wait()).accepted,
              a.accepts(w, Policy::bounded_wait(0)).accepted)
        << w;
  }
}

TEST(TvgAutomaton, InclusionLatticeOnRandomGraphs) {
  // L_nowait ⊆ L_wait[d] ⊆ L_wait[d'] ⊆ L_wait for d <= d', on random
  // scheduled TVGs: the core monotonicity the paper's regimes rely on.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomScheduledParams params;
    params.nodes = 5;
    params.edges = 12;
    params.horizon = 30;
    params.seed = seed;
    TimeVaryingGraph g = make_random_scheduled(params);
    TvgAutomaton a(std::move(g), 0);
    a.set_initial(0);
    a.set_accepting(1);
    a.set_accepting(2);
    AcceptOptions opt;
    opt.horizon = 80;
    for (const Word& w : all_words("ab", 4)) {
      const bool nowait = a.accepts(w, Policy::no_wait(), opt).accepted;
      const bool d2 = a.accepts(w, Policy::bounded_wait(2), opt).accepted;
      const bool d6 = a.accepts(w, Policy::bounded_wait(6), opt).accepted;
      const bool wait = a.accepts(w, Policy::wait(), opt).accepted;
      EXPECT_LE(nowait, d2) << "seed=" << seed << " w='" << w << "'";
      EXPECT_LE(d2, d6) << "seed=" << seed << " w='" << w << "'";
      EXPECT_LE(d6, wait) << "seed=" << seed << " w='" << w << "'";
    }
  }
}

TEST(TvgAutomaton, EnumerateLanguageMatchesPointQueries) {
  const TvgAutomaton a = make_relay_automaton();
  const auto lang = a.enumerate_language(3, Policy::wait());
  EXPECT_EQ(lang, std::vector<Word>{"ab"});
  EXPECT_TRUE(a.enumerate_language(3, Policy::no_wait()).empty());
}

TEST(TvgAutomaton, EnumerateHonorsExplicitAlphabet) {
  const TvgAutomaton a = make_relay_automaton();
  const auto lang = a.enumerate_language(2, Policy::wait(), {}, 100, "abz");
  EXPECT_EQ(lang, std::vector<Word>{"ab"});
}

TEST(TvgAutomaton, SelfLoopCountingWithAffineLatency) {
  // Single node, self loop with ζ(t) = t (doubling): times 1,2,4,8...
  // An accepting edge present only at t = 8 recognizes exactly aaab.
  TimeVaryingGraph g;
  const NodeId s = g.add_node();
  const NodeId f = g.add_node();
  g.add_edge(s, s, 'a', Presence::always(), Latency::affine(1, 0));
  g.add_edge(s, f, 'b', Presence::at_times({8}), Latency::constant(1));
  TvgAutomaton a(std::move(g), 1);
  a.set_initial(s);
  a.set_accepting(f);
  EXPECT_TRUE(a.accepts("aaab", Policy::no_wait()).accepted);
  EXPECT_FALSE(a.accepts("aab", Policy::no_wait()).accepted);
  EXPECT_FALSE(a.accepts("aaaab", Policy::no_wait()).accepted);
  EXPECT_FALSE(a.accepts("b", Policy::no_wait()).accepted);
  // With waiting, shorter a-prefixes can wait for t = 8... but waiting
  // at s does not change the time of the NEXT a-crossing under Wait
  // (crossing later arrives later); aab: after aa, t = 4, wait to 8 ✓.
  EXPECT_TRUE(a.accepts("aab", Policy::wait()).accepted);
  EXPECT_TRUE(a.accepts("ab", Policy::wait()).accepted);
  EXPECT_TRUE(a.accepts("b", Policy::wait()).accepted);
  EXPECT_FALSE(a.accepts("aaaab", Policy::wait()).accepted);  // t > 8 already
}

TEST(TvgAutomaton, GuardsBadNodeIds) {
  TimeVaryingGraph g;
  g.add_node();
  TvgAutomaton a(std::move(g), 0);
  EXPECT_THROW(a.set_initial(4), std::out_of_range);
  EXPECT_THROW(a.set_accepting(4), std::out_of_range);
}

}  // namespace
}  // namespace tvg::core
