// Unit tests for TVG connectivity classes (recurrence, TCR) and temporal
// metrics.
#include <gtest/gtest.h>

#include "tvg/algorithms.hpp"
#include "tvg/classes.hpp"
#include "tvg/generators.hpp"
#include "tvg/metrics.hpp"

namespace tvg {
namespace {

TEST(Recurrence, PeriodicEdgesAreRecurrent) {
  TimeVaryingGraph g;
  g.add_nodes(2);
  const EdgeId periodic = g.add_edge(
      0, 1, 'a', Presence::periodic(5, IntervalSet::from_points({1, 3})),
      Latency::constant(1));
  const EdgeId oneshot = g.add_edge(
      0, 1, 'b', Presence::intervals(IntervalSet::single(0, 4)),
      Latency::constant(1));
  EXPECT_TRUE(edge_is_recurrent(g.edge(periodic)));
  EXPECT_FALSE(edge_is_recurrent(g.edge(oneshot)));
  EXPECT_TRUE(edge_is_recurrent(Edge{}));  // default edge: always present
}

TEST(Recurrence, MaxGapOfPeriodicPattern) {
  TimeVaryingGraph g;
  g.add_nodes(2);
  // Present at residues 1 and 3 of period 10: gaps 2 (1->3) and 8 (3->11).
  const EdgeId e = g.add_edge(
      0, 1, 'a', Presence::periodic(10, IntervalSet::from_points({1, 3})),
      Latency::constant(1));
  EXPECT_EQ(edge_max_gap(g.edge(e)), 8);
  // Always-present edges have gap 1.
  const EdgeId always = g.add_edge(0, 1, 'b', Presence::always(),
                                   Latency::constant(1));
  EXPECT_EQ(edge_max_gap(g.edge(always)), 1);
  // Non-recurrent edges have no gap bound.
  const EdgeId dead = g.add_edge(0, 1, 'c', Presence::never(),
                                 Latency::constant(1));
  EXPECT_EQ(edge_max_gap(g.edge(dead)), std::nullopt);
}

TEST(Recurrence, GraphLevelPredicates) {
  RandomPeriodicParams params;
  params.nodes = 5;
  params.edges = 12;
  params.seed = 3;
  const TimeVaryingGraph g = make_random_periodic(params);
  EXPECT_TRUE(all_edges_recurrent(g));
  const auto bound = recurrence_bound(g);
  ASSERT_TRUE(bound.has_value());
  EXPECT_GE(*bound, 1);
  EXPECT_LE(*bound, params.period);

  RandomScheduledParams sched;
  sched.seed = 3;
  const TimeVaryingGraph h = make_random_scheduled(sched);
  EXPECT_FALSE(all_edges_recurrent(h));  // finite windows die out
  EXPECT_EQ(recurrence_bound(h), std::nullopt);
}

TEST(Recurrence, EmptyGraphIsNotRecurrent) {
  EXPECT_FALSE(all_edges_recurrent(TimeVaryingGraph{}));
}

TEST(Classes, RecurrentRingIsTcr) {
  // A periodic ring: recurrently connected under Wait.
  TimeVaryingGraph g;
  g.add_nodes(3);
  for (NodeId v = 0; v < 3; ++v) {
    g.add_edge(v, (v + 1) % 3, 'x',
               Presence::periodic(4, IntervalSet::from_points({v})),
               Latency::constant(1));
  }
  EXPECT_TRUE(recurrently_connected(g, Policy::wait()));
  // Under NoWait the same ring is NOT recurrently connected (the phase
  // alignment only works from lucky start instants).
  EXPECT_FALSE(recurrently_connected(g, Policy::no_wait()));
  const TvgClassReport report = classify(g, Policy::wait());
  EXPECT_TRUE(report.edge_recurrent);
  EXPECT_TRUE(report.recurrently_connected);
  ASSERT_TRUE(report.recurrence_bound.has_value());
  EXPECT_NE(report.to_string().find("TCR: yes"), std::string::npos);
}

TEST(Classes, OneShotRelayIsOnlyTcFromEarlyStarts) {
  TimeVaryingGraph g;
  g.add_nodes(2);
  g.add_edge(0, 1, 'a', Presence::intervals(IntervalSet::single(0, 2)),
             Latency::constant(1));
  g.add_edge(1, 0, 'a', Presence::intervals(IntervalSet::single(0, 2)),
             Latency::constant(1));
  EXPECT_TRUE(temporally_connected(g, 0, Policy::wait(),
                                   SearchLimits::up_to(100)));
  EXPECT_FALSE(recurrently_connected(g, Policy::wait()));
}

TEST(Metrics, EccentricityAndCloseness) {
  TimeVaryingGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  g.add_static_edge(a, b, 'x', 2);
  g.add_static_edge(b, c, 'x', 3);
  g.add_static_edge(c, a, 'x', 1);
  const auto ecc = temporal_eccentricity(g, a, 0, Policy::wait());
  ASSERT_TRUE(ecc.has_value());
  EXPECT_EQ(*ecc, 5);  // a -> c via b
  const double closeness = temporal_closeness(g, a, 0, Policy::wait());
  EXPECT_NEAR(closeness, 1.0 / 3 + 1.0 / 6, 1e-9);
  // Unreachable somewhere -> no eccentricity.
  TimeVaryingGraph h;
  h.add_nodes(2);
  EXPECT_EQ(temporal_eccentricity(h, 0, 0, Policy::wait()), std::nullopt);
}

TEST(Metrics, ContactsAndPresenceMass) {
  TimeVaryingGraph g;
  g.add_nodes(2);
  const EdgeId e = g.add_edge(
      0, 1, 'a', Presence::intervals(IntervalSet({{0, 3}, {5, 6}, {9, 12}})),
      Latency::constant(1));
  EXPECT_EQ(contact_count(g.edge(e), 20), 3u);
  EXPECT_EQ(contact_count(g.edge(e), 6), 2u);
  EXPECT_EQ(total_presence(g, 20), 3 + 1 + 3);
}

TEST(Metrics, SnapshotDensity) {
  TimeVaryingGraph g;
  g.add_nodes(3);  // 6 ordered pairs
  g.add_edge(0, 1, 'a', Presence::intervals(IntervalSet::single(0, 5)),
             Latency::constant(1));
  g.add_edge(1, 2, 'a', Presence::intervals(IntervalSet::single(3, 5)),
             Latency::constant(1));
  EXPECT_NEAR(snapshot_density(g, 0), 1.0 / 6, 1e-9);
  EXPECT_NEAR(snapshot_density(g, 4), 2.0 / 6, 1e-9);
  EXPECT_NEAR(snapshot_density(g, 10), 0.0, 1e-9);
  EXPECT_GT(average_density(g, 10), 0.0);
  EXPECT_LT(average_density(g, 10), 1.0);
}

TEST(Metrics, CharacteristicTemporalDistance) {
  TimeVaryingGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_static_edge(a, b, 'x', 4);
  const auto ctd =
      characteristic_temporal_distance(g, 0, Policy::wait());
  ASSERT_TRUE(ctd.has_value());
  EXPECT_NEAR(*ctd, 4.0, 1e-9);  // only a->b is a proper pair
  TimeVaryingGraph empty;
  empty.add_nodes(2);
  EXPECT_EQ(characteristic_temporal_distance(empty, 0, Policy::wait()),
            std::nullopt);
}

TEST(Metrics, WaitingImprovesCloseness) {
  // Store-carry-forward again, through the metrics lens.
  TimeVaryingGraph g;
  g.add_nodes(3);
  g.add_edge(0, 1, 'a', Presence::intervals(IntervalSet::single(0, 2)),
             Latency::constant(1));
  g.add_edge(1, 2, 'a', Presence::intervals(IntervalSet::single(8, 10)),
             Latency::constant(1));
  const double wait_closeness =
      temporal_closeness(g, 0, 0, Policy::wait(), 100);
  const double nowait_closeness =
      temporal_closeness(g, 0, 0, Policy::no_wait(), 100);
  EXPECT_GT(wait_closeness, nowait_closeness);
}

}  // namespace
}  // namespace tvg
