// Unit tests for the CFG/CYK classifier used by the expressivity matrix.
#include <gtest/gtest.h>

#include "fa/grammar.hpp"
#include "tm/machines.hpp"

namespace tvg::fa {
namespace {

TEST(Grammar, AnBnMatchesOracle) {
  const CnfGrammar g = CnfGrammar::anbn();
  for (int n = 1; n <= 8; ++n) {
    EXPECT_TRUE(g.accepts(std::string(n, 'a') + std::string(n, 'b'))) << n;
  }
  EXPECT_FALSE(g.accepts(""));
  EXPECT_FALSE(g.accepts("a"));
  EXPECT_FALSE(g.accepts("b"));
  EXPECT_FALSE(g.accepts("ba"));
  EXPECT_FALSE(g.accepts("aab"));
  EXPECT_FALSE(g.accepts("abb"));
  EXPECT_FALSE(g.accepts("abab"));
}

TEST(Grammar, AnBnAgreesWithTmOracleExhaustively) {
  const CnfGrammar g = CnfGrammar::anbn();
  // Exhaustive over {a,b}^{<=10}.
  std::vector<std::string> frontier{""};
  for (int len = 0; len <= 10; ++len) {
    for (const std::string& w : frontier) {
      EXPECT_EQ(g.accepts(w), tm::is_anbn(w)) << "'" << w << "'";
    }
    std::vector<std::string> next;
    for (const std::string& w : frontier) {
      next.push_back(w + 'a');
      next.push_back(w + 'b');
    }
    frontier = std::move(next);
  }
}

TEST(Grammar, EvenPalindromes) {
  const CnfGrammar g = CnfGrammar::even_palindromes();
  EXPECT_TRUE(g.accepts(""));
  EXPECT_TRUE(g.accepts("aa"));
  EXPECT_TRUE(g.accepts("bb"));
  EXPECT_TRUE(g.accepts("abba"));
  EXPECT_TRUE(g.accepts("baab"));
  EXPECT_TRUE(g.accepts("aabbaa"));
  EXPECT_FALSE(g.accepts("ab"));
  EXPECT_FALSE(g.accepts("aba"));   // odd length
  EXPECT_FALSE(g.accepts("abab"));
}

TEST(Grammar, Dyck1AgreesWithOracle) {
  const CnfGrammar g = CnfGrammar::dyck1();
  std::vector<std::string> frontier{""};
  for (int len = 0; len <= 10; ++len) {
    for (const std::string& w : frontier) {
      EXPECT_EQ(g.accepts(w), tm::is_dyck(w)) << "'" << w << "'";
    }
    std::vector<std::string> next;
    for (const std::string& w : frontier) {
      next.push_back(w + 'a');
      next.push_back(w + 'b');
    }
    frontier = std::move(next);
  }
}

TEST(Grammar, EpsilonFlag) {
  CnfGrammar g = CnfGrammar::anbn();
  EXPECT_FALSE(g.accepts(""));
  g.set_accepts_epsilon(true);
  EXPECT_TRUE(g.accepts(""));
}

}  // namespace
}  // namespace tvg::fa
