// Unit tests for journeys: the direct / indirect / d-bounded feasibility
// trichotomy that the whole paper is about.
#include <gtest/gtest.h>

#include "tvg/journey.hpp"

namespace tvg {
namespace {

// Line graph u -a-> v -b-> w with controllable schedules.
struct Line {
  TimeVaryingGraph g;
  NodeId u, v, w;
  EdgeId uv, vw;
};

Line make_line(Presence p_uv, Presence p_vw, Time lat_uv = 2,
               Time lat_vw = 3) {
  Line l;
  l.u = l.g.add_node("u");
  l.v = l.g.add_node("v");
  l.w = l.g.add_node("w");
  l.uv = l.g.add_edge(l.u, l.v, 'a', std::move(p_uv),
                      Latency::constant(lat_uv));
  l.vw = l.g.add_edge(l.v, l.w, 'b', std::move(p_vw),
                      Latency::constant(lat_vw));
  return l;
}

TEST(Journey, EmptyJourneyIsTrivialAndValid) {
  const Line l = make_line(Presence::always(), Presence::always());
  const Journey j{l.u, 5, {}};
  EXPECT_TRUE(j.empty());
  EXPECT_EQ(j.hops(), 0u);
  EXPECT_EQ(j.arrival(l.g), 5);
  EXPECT_EQ(j.duration(l.g), 0);
  EXPECT_EQ(j.end_node(l.g), l.u);
  EXPECT_EQ(j.word(l.g), "");
  EXPECT_TRUE(validate_journey(l.g, j, Policy::no_wait()).ok);
}

TEST(Journey, DirectJourneyValidUnderAllPolicies) {
  const Line l = make_line(Presence::always(), Presence::always());
  // Depart u at 0, arrive v at 2, depart immediately, arrive w at 5.
  const Journey j{l.u, 0, {{l.uv, 0}, {l.vw, 2}}};
  EXPECT_TRUE(validate_journey(l.g, j, Policy::no_wait()).ok);
  EXPECT_TRUE(validate_journey(l.g, j, Policy::bounded_wait(0)).ok);
  EXPECT_TRUE(validate_journey(l.g, j, Policy::wait()).ok);
  EXPECT_EQ(j.arrival(l.g), 5);
  EXPECT_EQ(j.duration(l.g), 5);
  EXPECT_EQ(j.word(l.g), "ab");
  EXPECT_EQ(j.max_wait(l.g), 0);
}

TEST(Journey, IndirectJourneyRejectedByNoWait) {
  const Line l = make_line(Presence::always(), Presence::always());
  // Wait 4 units at v before the second leg.
  const Journey j{l.u, 0, {{l.uv, 0}, {l.vw, 6}}};
  const auto nowait = validate_journey(l.g, j, Policy::no_wait());
  EXPECT_FALSE(nowait.ok);
  EXPECT_NE(nowait.reason.find("waits 4"), std::string::npos);
  EXPECT_FALSE(validate_journey(l.g, j, Policy::bounded_wait(3)).ok);
  EXPECT_TRUE(validate_journey(l.g, j, Policy::bounded_wait(4)).ok);
  EXPECT_TRUE(validate_journey(l.g, j, Policy::wait()).ok);
  EXPECT_EQ(j.max_wait(l.g), 4);
  EXPECT_EQ(j.wait_before(l.g, 1), 4);
}

TEST(Journey, InitialWaitCountsAgainstThePolicy) {
  const Line l = make_line(Presence::always(), Presence::always());
  const Journey j{l.u, 0, {{l.uv, 3}, {l.vw, 5}}};
  EXPECT_FALSE(validate_journey(l.g, j, Policy::no_wait()).ok);
  EXPECT_FALSE(validate_journey(l.g, j, Policy::bounded_wait(2)).ok);
  EXPECT_TRUE(validate_journey(l.g, j, Policy::bounded_wait(3)).ok);
  EXPECT_TRUE(validate_journey(l.g, j, Policy::wait()).ok);
}

TEST(Journey, AbsentEdgeInvalidatesUnderEveryPolicy) {
  const Line l =
      make_line(Presence::intervals(IntervalSet::single(0, 2)),
                Presence::always());
  const Journey j{l.u, 3, {{l.uv, 3}, {l.vw, 5}}};
  const auto r = validate_journey(l.g, j, Policy::wait());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("absent"), std::string::npos);
}

TEST(Journey, TimeTravelRejected) {
  const Line l = make_line(Presence::always(), Presence::always());
  // Second leg departs before the first arrives (2).
  const Journey j{l.u, 0, {{l.uv, 0}, {l.vw, 1}}};
  const auto r = validate_journey(l.g, j, Policy::wait());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("time travel"), std::string::npos);
}

TEST(Journey, DisconnectedLegsRejected) {
  const Line l = make_line(Presence::always(), Presence::always());
  // vw does not start at u.
  const Journey j{l.u, 0, {{l.vw, 0}}};
  EXPECT_FALSE(validate_journey(l.g, j, Policy::wait()).ok);
}

TEST(Journey, BadIdsRejectedGracefully) {
  const Line l = make_line(Presence::always(), Presence::always());
  EXPECT_FALSE(
      validate_journey(l.g, Journey{99, 0, {}}, Policy::wait()).ok);
  EXPECT_FALSE(validate_journey(l.g, Journey{l.u, 0, {{1234, 0}}},
                                Policy::wait())
                   .ok);
}

TEST(Journey, WaitingEnablesOtherwiseInfeasibleConnections) {
  // The paper's store-carry-forward motivation in two edges: uv exists
  // only early, vw only late. No direct journey u->w exists, but an
  // indirect one does.
  const Line l = make_line(Presence::intervals(IntervalSet::single(0, 1)),
                           Presence::intervals(IntervalSet::single(9, 10)));
  const Journey indirect{l.u, 0, {{l.uv, 0}, {l.vw, 9}}};
  EXPECT_TRUE(validate_journey(l.g, indirect, Policy::wait()).ok);
  EXPECT_FALSE(validate_journey(l.g, indirect, Policy::no_wait()).ok);
  EXPECT_FALSE(validate_journey(l.g, indirect, Policy::bounded_wait(6)).ok);
  EXPECT_TRUE(validate_journey(l.g, indirect, Policy::bounded_wait(7)).ok);
}

TEST(Journey, AffineLatencyArrivals) {
  TimeVaryingGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const EdgeId e = g.add_edge(a, b, 'x', Presence::always(),
                              Latency::affine(1, 0));  // t -> 2t
  const Journey j{a, 3, {{e, 3}}};
  EXPECT_TRUE(validate_journey(g, j, Policy::no_wait()).ok);
  EXPECT_EQ(j.arrival(g), 6);
  EXPECT_EQ(j.duration(g), 3);
}

TEST(Journey, ToStringShowsRoute) {
  const Line l = make_line(Presence::always(), Presence::always());
  const Journey j{l.u, 0, {{l.uv, 0}, {l.vw, 2}}};
  const std::string s = j.to_string(l.g);
  EXPECT_NE(s.find("u @0"), std::string::npos);
  EXPECT_NE(s.find("-a["), std::string::npos);
  EXPECT_NE(s.find("w"), std::string::npos);
}

TEST(Policy, MaxDepartureWindows) {
  EXPECT_EQ(Policy::no_wait().max_departure(10), 10);
  EXPECT_EQ(Policy::bounded_wait(5).max_departure(10), 15);
  EXPECT_EQ(Policy::wait().max_departure(10), kTimeInfinity);
  EXPECT_EQ(Policy::bounded_wait(-3).bound, 0);  // clamped
}

TEST(Policy, AllowsWaiting) {
  EXPECT_FALSE(Policy::no_wait().allows_waiting());
  EXPECT_FALSE(Policy::bounded_wait(0).allows_waiting());
  EXPECT_TRUE(Policy::bounded_wait(1).allows_waiting());
  EXPECT_TRUE(Policy::wait().allows_waiting());
}

TEST(Policy, ToString) {
  EXPECT_EQ(Policy::no_wait().to_string(), "nowait");
  EXPECT_EQ(Policy::wait().to_string(), "wait");
  EXPECT_EQ(Policy::bounded_wait(7).to_string(), "wait[7]");
}

}  // namespace
}  // namespace tvg
