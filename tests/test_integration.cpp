// Integration tests: properties that hold ACROSS modules — the
// configuration search, the NFA pipeline, journey validation,
// serialization, and the structural operations must all tell one
// consistent story.
#include <gtest/gtest.h>

#include "core/constructions.hpp"
#include "core/expressivity.hpp"
#include "core/journey_queries.hpp"
#include "core/periodic_nfa.hpp"
#include "fa/regex.hpp"
#include "tm/machines.hpp"
#include "tvg/composition.hpp"
#include "tvg/generators.hpp"
#include "tvg/serialization.hpp"

namespace tvg::core {
namespace {

TvgAutomaton random_periodic_automaton(std::uint64_t seed,
                                       std::size_t nodes = 5) {
  RandomPeriodicParams gen;
  gen.nodes = nodes;
  gen.edges = nodes * 2 + 3;
  gen.period = 5;
  gen.max_latency = 2;
  gen.seed = seed;
  TimeVaryingGraph g = make_random_periodic(gen);
  TvgAutomaton a(std::move(g), 0);
  a.set_initial(0);
  a.set_accepting(static_cast<NodeId>(nodes - 1));
  return a;
}

TEST(Integration, EnumerationAgreesWithNfaEnumeration) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const TvgAutomaton a = random_periodic_automaton(seed);
    for (const Policy policy :
         {Policy::no_wait(), Policy::wait(), Policy::bounded_wait(2)}) {
      AcceptOptions opt;
      opt.horizon = 300;
      const auto search_lang = a.enumerate_language(4, policy, opt);
      const auto nfa_lang =
          semi_periodic_to_nfa(a, policy).enumerate(4);
      EXPECT_EQ(search_lang, nfa_lang)
          << "seed=" << seed << " policy=" << policy.to_string();
    }
  }
}

TEST(Integration, CensusAgreesWithDfaCensus) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const TvgAutomaton a = random_periodic_automaton(seed);
    AcceptOptions opt;
    opt.horizon = 300;
    const auto census = language_census(a, Policy::wait(), 4, opt);
    const fa::Dfa dfa =
        fa::Dfa::determinize(semi_periodic_to_nfa(a, Policy::wait()));
    const auto dfa_census = dfa.census(4);
    for (std::size_t len = 0; len <= 4; ++len) {
      EXPECT_EQ(census[len], dfa_census[len])
          << "seed=" << seed << " len=" << len;
    }
  }
}

TEST(Integration, WitnessesAlwaysValidateOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TvgAutomaton a = random_periodic_automaton(seed);
    AcceptOptions opt;
    opt.horizon = 300;
    for (const Policy policy :
         {Policy::no_wait(), Policy::wait(), Policy::bounded_wait(3)}) {
      for (const Word& w : all_words("ab", 4)) {
        const AcceptResult r = a.accepts(w, policy, opt);
        if (!r.accepted) continue;
        ASSERT_TRUE(r.witness.has_value());
        const auto v = validate_journey(a.graph(), *r.witness, policy);
        EXPECT_TRUE(v.ok) << "seed=" << seed << " '" << w << "' under "
                          << policy.to_string() << ": " << v.reason;
        EXPECT_EQ(r.witness->word(a.graph()), w);
        EXPECT_TRUE(a.accepting().contains(r.witness->end_node(a.graph())));
      }
    }
  }
}

TEST(Integration, SerializationPreservesLanguages) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const TvgAutomaton a = random_periodic_automaton(seed);
    TimeVaryingGraph reloaded = from_text(to_text(a.graph()));
    TvgAutomaton b(std::move(reloaded), a.start_time());
    for (NodeId v : a.initial()) b.set_initial(v);
    for (NodeId v : a.accepting()) b.set_accepting(v);
    const fa::Dfa da =
        fa::Dfa::determinize(semi_periodic_to_nfa(a, Policy::wait()))
            .minimized();
    const fa::Dfa db =
        fa::Dfa::determinize(semi_periodic_to_nfa(b, Policy::wait()))
            .minimized();
    EXPECT_TRUE(fa::Dfa::equivalent(da, db)) << "seed=" << seed;
  }
}

TEST(Integration, TimeShiftPreservesLanguageFromShiftedStart) {
  // L(A(G), start t0) == L(A(shift(G, δ)), start t0 + δ): temporal
  // invariance of acceptance under rigid schedule translation.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const TvgAutomaton a = random_periodic_automaton(seed);
    const Time delta = 7;
    TvgAutomaton shifted(time_shifted(a.graph(), delta),
                         a.start_time() + delta);
    for (NodeId v : a.initial()) shifted.set_initial(v);
    for (NodeId v : a.accepting()) shifted.set_accepting(v);
    AcceptOptions opt;
    opt.horizon = 400;
    for (const Word& w : all_words("ab", 4)) {
      EXPECT_EQ(a.accepts(w, Policy::no_wait(), opt).accepted,
                shifted.accepts(w, Policy::no_wait(), opt).accepted)
          << "seed=" << seed << " '" << w << "'";
      EXPECT_EQ(a.accepts(w, Policy::wait(), opt).accepted,
                shifted.accepts(w, Policy::wait(), opt).accepted)
          << "seed=" << seed << " '" << w << "'";
    }
  }
}

TEST(Integration, RelabelingCommutesWithAcceptance) {
  const TvgAutomaton fig1 = make_anbn_tvg(2, 3).automaton();
  TvgAutomaton swapped(relabeled(fig1.graph(), {{'a', 'x'}, {'b', 'y'}}),
                       fig1.start_time());
  for (NodeId v : fig1.initial()) swapped.set_initial(v);
  for (NodeId v : fig1.accepting()) swapped.set_accepting(v);
  for (const Word& w : all_words("ab", 8)) {
    Word mapped = w;
    for (char& c : mapped) c = c == 'a' ? 'x' : 'y';
    EXPECT_EQ(fig1.accepts(w, Policy::no_wait()).accepted,
              swapped.accepts(mapped, Policy::no_wait()).accepted)
        << w;
  }
}

TEST(Integration, DisjointUnionIsLanguageUnionForDisjointAlphabets) {
  // Initial/accepting sets carried to both components: the union graph
  // accepts the union of the two languages when alphabets are disjoint.
  const fa::Dfa d1 = fa::regex_to_min_dfa("ab", "ab");
  const fa::Dfa d2 = fa::regex_to_min_dfa("xy", "xy");
  const TvgAutomaton a1 = regular_to_tvg(d1);
  const TvgAutomaton a2 = regular_to_tvg(d2);
  const auto [g, offset] = disjoint_union(a1.graph(), a2.graph());
  TvgAutomaton u(g, 0);
  for (NodeId v : a1.initial()) u.set_initial(v);
  for (NodeId v : a1.accepting()) u.set_accepting(v);
  for (NodeId v : a2.initial()) u.set_initial(v + offset);
  for (NodeId v : a2.accepting()) u.set_accepting(v + offset);
  EXPECT_TRUE(u.accepts("ab", Policy::wait()).accepted);
  EXPECT_TRUE(u.accepts("xy", Policy::wait()).accepted);
  EXPECT_FALSE(u.accepts("ax", Policy::wait()).accepted);
  EXPECT_FALSE(u.accepts("a", Policy::wait()).accepted);
}

TEST(Integration, TmBackedAndOracleBackedConstructionsCoincide) {
  const ComputableConstruction via_tm = computable_to_tvg(
      tm::Decider::from_machine(tm::make_anbn_machine(), "anbn", "ab"));
  const ComputableConstruction via_fn = computable_to_tvg(
      tm::Decider::from_function(tm::is_anbn, "anbn", "ab"));
  const TvgAutomaton a = via_tm.automaton();
  const TvgAutomaton b = via_fn.automaton();
  for (const Word& w : all_words("ab", 7)) {
    EXPECT_EQ(a.accepts(w, Policy::no_wait()).accepted,
              b.accepts(w, Policy::no_wait()).accepted)
        << w;
  }
}

TEST(Integration, ConstrainedQueryAgreesWithPlainAcceptance) {
  // find_constrained_journey with the singleton regex {w} must succeed
  // exactly when accepts(w) does.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const TvgAutomaton a = random_periodic_automaton(seed);
    AcceptOptions opt;
    opt.horizon = 300;
    for (const Word& w : all_words("ab", 3)) {
      if (w.empty()) continue;
      const fa::Dfa only_w = fa::Dfa::determinize(
          fa::Nfa::word_lang(w, "ab"));
      const bool via_query =
          find_constrained_journey(a, only_w, Policy::wait(), w.size(), opt)
              .has_value();
      const bool via_accepts = a.accepts(w, Policy::wait(), opt).accepted;
      EXPECT_EQ(via_query, via_accepts) << "seed=" << seed << " '" << w
                                        << "'";
    }
  }
}

}  // namespace
}  // namespace tvg::core
