// E2 — Theorem 2.1: L_nowait contains all computable languages.
// The construction is exercised with C++ oracles AND with real Turing
// machines running inside the presence function, across the standard
// language suite — including languages far outside context-free.
#include <gtest/gtest.h>

#include "core/constructions.hpp"
#include "core/expressivity.hpp"
#include "tm/machines.hpp"

namespace tvg::core {
namespace {

TEST(Encoding, RoundTripsAllShortWords) {
  for (const std::string alphabet : {"ab", "abc", "a", "xyzw"}) {
    for (const Word& w : all_words(alphabet, 5)) {
      const Time t = encode_word(w, alphabet);
      EXPECT_EQ(decode_time(t, alphabet), w) << "'" << w << "'";
    }
  }
}

TEST(Encoding, IsInjectiveOnShortWords) {
  std::set<Time> seen;
  for (const Word& w : all_words("ab", 8)) {
    EXPECT_TRUE(seen.insert(encode_word(w, "ab")).second) << w;
  }
}

TEST(Encoding, EpsilonIsOne) {
  EXPECT_EQ(encode_word("", "ab"), 1);
  EXPECT_EQ(decode_time(1, "ab"), Word{});
}

TEST(Encoding, RejectsGarbageTimes) {
  EXPECT_EQ(decode_time(0, "ab"), std::nullopt);
  EXPECT_EQ(decode_time(-5, "ab"), std::nullopt);
  // 3 = 0·K + ... for K = 3: digits contain a zero -> not an encoding.
  EXPECT_EQ(decode_time(3, "ab"), std::nullopt);
  EXPECT_EQ(decode_time(9, "ab"), std::nullopt);  // 9 = 1,0,0 in base 3
}

TEST(Encoding, RejectsForeignSymbolsAndOverflow) {
  EXPECT_THROW((void)encode_word("az", "ab"), std::invalid_argument);
  EXPECT_THROW((void)encode_word(Word(64, 'a'), "ab"), std::overflow_error);
}

TEST(Thm21, ConstructionShape) {
  const ComputableConstruction c = computable_to_tvg(
      tm::Decider::from_function(tm::is_anbn, "anbn", "ab"));
  EXPECT_EQ(c.K, 3);
  // One self-loop and one accepting edge per symbol.
  EXPECT_EQ(c.graph.edge_count(), 4u);
  EXPECT_GE(c.max_word_length, 35u);  // base-3 capacity of int64
  EXPECT_FALSE(c.eps_acc.has_value());  // ε not in anbn
}

TEST(Thm21, EpsilonHandling) {
  const ComputableConstruction with_eps = computable_to_tvg(
      tm::Decider::from_function(tm::has_even_a, "even_a", "ab"));
  ASSERT_TRUE(with_eps.eps_acc.has_value());  // ε has zero a's
  const TvgAutomaton a = with_eps.automaton();
  EXPECT_TRUE(a.accepts("", Policy::no_wait()).accepted);
  const ComputableConstruction without = computable_to_tvg(
      tm::Decider::from_function(tm::is_anbn, "anbn", "ab"));
  EXPECT_FALSE(without.automaton().accepts("", Policy::no_wait()).accepted);
}

struct SuiteCase {
  const char* name;
  const char* alphabet;
  bool (*oracle)(const std::string&);
  int max_len;
};

class Thm21Suite : public ::testing::TestWithParam<SuiteCase> {};

TEST_P(Thm21Suite, NoWaitLanguageEqualsOracleExhaustively) {
  const auto& param = GetParam();
  const ComputableConstruction c = computable_to_tvg(
      tm::Decider::from_function(param.oracle, param.name, param.alphabet));
  const TvgAutomaton a = c.automaton();
  const auto words =
      all_words(param.alphabet, static_cast<std::size_t>(param.max_len));
  const OracleComparison cmp =
      compare_with_oracle(a, Policy::no_wait(), param.oracle, words);
  EXPECT_TRUE(cmp.perfect())
      << param.name << ": " << cmp.mismatches.size() << " mismatches, first: "
      << (cmp.mismatches.empty() ? "-" : cmp.mismatches.front());
  EXPECT_GT(cmp.accepted_by_both, 0u) << "vacuous test for " << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    StandardLanguages, Thm21Suite,
    ::testing::Values(
        SuiteCase{"anbn", "ab", tm::is_anbn, 10},
        SuiteCase{"anbncn", "abc", tm::is_anbncn, 7},
        SuiteCase{"palindrome", "ab", tm::is_palindrome, 9},
        SuiteCase{"even_a", "ab", tm::has_even_a, 8},
        SuiteCase{"dyck1", "ab", tm::is_dyck, 9},
        SuiteCase{"ww", "ab", tm::is_ww, 8},
        SuiteCase{"unary_prime", "a", tm::is_unary_prime, 30}),
    [](const ::testing::TestParamInfo<SuiteCase>& param_info) {
      return param_info.param.name;
    });

TEST(Thm21, TuringMachineInsideThePresenceFunction) {
  // The honest version: the schedule literally runs a DTM to decide
  // whether the accepting edge exists. Computable => expressible.
  const ComputableConstruction c = computable_to_tvg(
      tm::Decider::from_machine(tm::make_anbncn_machine(), "anbncn-tm",
                                "abc"));
  const TvgAutomaton a = c.automaton();
  const OracleComparison cmp = compare_with_oracle(
      a, Policy::no_wait(), tm::is_anbncn, all_words("abc", 6));
  EXPECT_TRUE(cmp.perfect());
  EXPECT_TRUE(a.accepts("aabbcc", Policy::no_wait()).accepted);
  EXPECT_FALSE(a.accepts("aabbc", Policy::no_wait()).accepted);
}

TEST(Thm21, WitnessJourneyTimesAreTheEncodings) {
  // The construction's defining invariant: after reading w (staying on
  // the hub), the configuration time IS encode(w).
  const ComputableConstruction c = computable_to_tvg(
      tm::Decider::from_function(tm::is_anbn, "anbn", "ab"));
  const TvgAutomaton a = c.automaton();
  const AcceptResult r = a.accepts("aabb", Policy::no_wait());
  ASSERT_TRUE(r.accepted);
  ASSERT_TRUE(r.witness.has_value());
  const Journey& j = *r.witness;
  EXPECT_TRUE(validate_journey(c.graph, j, Policy::no_wait()).ok);
  // Departure of leg i equals the encoding of the first i symbols.
  for (std::size_t i = 0; i < j.legs.size(); ++i) {
    EXPECT_EQ(j.legs[i].departure, encode_word(Word("aabb").substr(0, i),
                                               c.alphabet))
        << "leg " << i;
  }
  EXPECT_EQ(j.arrival(c.graph), encode_word("aabb", c.alphabet));
}

TEST(Thm21, LongWordsUpToEncodingCapacity) {
  const ComputableConstruction c = computable_to_tvg(
      tm::Decider::from_function(tm::is_unary_prime, "primes", "a"));
  const TvgAutomaton a = c.automaton();
  // Unary over {a}: K = 2, capacity ~62 symbols.
  ASSERT_GE(c.max_word_length, 60u);
  EXPECT_TRUE(a.accepts(Word(61, 'a'), Policy::no_wait()).accepted);
  EXPECT_FALSE(a.accepts(Word(60, 'a'), Policy::no_wait()).accepted);
  EXPECT_TRUE(a.accepts(Word(59, 'a'), Policy::no_wait()).accepted);
}

TEST(Thm21, WaitDestroysTheEncoding) {
  // Under Wait the same graph accepts much more than L: the time-as-word
  // invariant breaks (one can idle at the hub). Expressivity collapse in
  // action: check L_wait ⊋ L on a non-member.
  const ComputableConstruction c = computable_to_tvg(
      tm::Decider::from_function(tm::is_anbn, "anbn", "ab"));
  const TvgAutomaton a = c.automaton();
  AcceptOptions opt;
  opt.departures_per_edge = 4;
  // "ab" in L. "aab" not in L_nowait — but reachable with waiting? The
  // accepting edge for 'b' is present at t with decode(3t+2) ∈ L; after
  // reading "aa" directly, t = enc("aa") = 13; waiting to t' = 16 makes
  // 3·16+2 = 50 = enc("aab")? decode(50): 50 = 1,2,1,2 base 3 -> "abab"?
  // Rather than hand-pick, scan: some word outside L must be accepted.
  const auto lang = a.enumerate_language(4, Policy::wait(), opt, 1000);
  bool found_extra = false;
  for (const Word& w : lang) {
    if (!tm::is_anbn(w)) found_extra = true;
  }
  EXPECT_TRUE(found_extra)
      << "Wait should break the counting construction";
}

}  // namespace
}  // namespace tvg::core
