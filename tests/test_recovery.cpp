// Crash-recovery torture suite for tvg::DurableEngine
// (durable_engine.hpp): drive seeded mutation/checkpoint workloads into
// deterministic injected faults (failpoint.hpp) at every WAL and
// checkpoint site, "crash" (abandon the engine), recover(), and verify
// the recovered engine is BIT-IDENTICAL to a no-crash oracle replaying
// the same mutation prefix — serialized text, journey results and
// closure rows all compared with operator==.
//
// Determinism/scale: every schedule is a pure function of
// (TVG_RECOVERY_SEED, site, variation, round). One run covers
// sites x variations x rounds schedules; CI sweeps TVG_RECOVERY_SEED
// over 16 values, so the matrix comfortably clears the 200-schedule
// floor with every schedule replayable from its coordinates.
#include "tvg/durable_engine.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "tvg/failpoint.hpp"
#include "tvg/generators.hpp"
#include "tvg/io.hpp"
#include "tvg/serialization.hpp"

namespace fs = std::filesystem;

namespace tvg {
namespace {

std::uint64_t env_seed() {
  const char* env = std::getenv("TVG_RECOVERY_SEED");
  return env ? std::strtoull(env, nullptr, 10) : 0;
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir =
      (fs::path(::testing::TempDir()) / ("tvg_recovery_" + std::to_string(::getpid()) + "_" + tag)).string();
  fs::remove_all(dir);
  return dir;
}

TimeVaryingGraph base_graph(std::uint64_t seed) {
  RandomPeriodicParams params;
  params.nodes = 10;
  params.edges = 24;
  params.period = 8;
  params.density = 0.35;
  params.max_latency = 2;
  params.seed = seed;
  return make_random_periodic(params);
}

Presence random_presence(std::mt19937_64& rng) {
  const Time period = 6 + static_cast<Time>(rng() % 4);
  IntervalSet pattern;
  bool any = false;
  for (Time t = 0; t < period; ++t) {
    if (rng() % 3 == 0) {
      pattern.insert_point(t);
      any = true;
    }
  }
  if (!any) pattern.insert_point(static_cast<Time>(rng() % period));
  return Presence::periodic(period, std::move(pattern));
}

/// Valid mutation against the CURRENT counts (the stream tracker below
/// keeps them; recovery must never see a validation failure).
EdgeMutation random_mutation(std::mt19937_64& rng, std::size_t nodes,
                             std::size_t edges) {
  const auto node = [&] { return static_cast<NodeId>(rng() % nodes); };
  const auto edge = [&] { return static_cast<EdgeId>(rng() % edges); };
  switch (rng() % 8) {
    case 0:
    case 1:
      return EdgeMutation::add_edge(node(), node(),
                                    rng() % 2 == 0 ? 'a' : 'b',
                                    random_presence(rng),
                                    Latency::constant(1 + Time(rng() % 3)));
    case 2:
      return EdgeMutation::remove_edge(edge());
    case 3:
    case 4:
    case 5:
      return EdgeMutation::patch_presence(edge(), random_presence(rng));
    default:
      return EdgeMutation::override_latency(
          edge(), Latency::constant(1 + Time(rng() % 4)));
  }
}

/// The no-crash oracle at sequence `upto`: the base graph with the
/// first `upto` mutations of the attempted stream applied in order.
TimeVaryingGraph oracle_at(std::uint64_t base_seed,
                           const std::vector<EdgeMutation>& stream,
                           std::uint64_t upto) {
  MutableEngine oracle(base_graph(base_seed), 1);
  for (std::uint64_t i = 0; i < upto; ++i) oracle.apply(stream[i]);
  return oracle.materialize();
}

/// Bit-identity of recovered vs oracle: the serialized graphs match
/// byte for byte, and so do query results through both engines.
void expect_bit_identical(DurableEngine& recovered,
                          const TimeVaryingGraph& oracle,
                          const std::string& where) {
  const TimeVaryingGraph got = recovered.materialize();
  ASSERT_EQ(to_text(got), to_text(oracle)) << where;
  const QueryEngine ref(oracle, 1, CacheConfig::disabled());
  const auto nodes = static_cast<NodeId>(oracle.node_count());
  for (NodeId s = 0; s < std::min<NodeId>(nodes, 4); ++s) {
    const JourneyQuery q = JourneyQuery::foremost(s, 0);
    EXPECT_EQ(recovered.run(q), ref.run(q)) << where << " source " << s;
  }
  ClosureQuery cq;
  cq.threads = 1;
  EXPECT_EQ(recovered.closure(cq), ref.closure(cq)) << where;
}

// ---------------------------------------------------------------------------
// Deterministic single-scenario tests
// ---------------------------------------------------------------------------

TEST(DurableEngine, FreshConstructRejectsExistingState) {
  const std::string dir = fresh_dir("fresh_reject");
  { DurableEngine engine(base_graph(1), dir, {}); }
  EXPECT_THROW(DurableEngine(base_graph(1), dir, {}), std::invalid_argument);
}

TEST(DurableEngine, RecoverEmptyOrMissingDirThrows) {
  const std::string dir = fresh_dir("empty");
  EXPECT_THROW((void)DurableEngine::recover(dir), RecoveryError);
  fs::create_directories(dir);
  EXPECT_THROW((void)DurableEngine::recover(dir), RecoveryError);
}

TEST(DurableEngine, RecoverAfterCleanShutdownIsExact) {
  const std::string dir = fresh_dir("clean");
  std::mt19937_64 rng(7);
  std::vector<EdgeMutation> stream;
  std::size_t edges = base_graph(7).edge_count();
  std::string expected;
  {
    DurableEngine engine(base_graph(7), dir, {});
    for (int i = 0; i < 20; ++i) {
      EdgeMutation m = random_mutation(rng, engine.node_count(), edges);
      if (m.kind == EdgeMutation::Kind::kAddEdge) ++edges;
      engine.apply(m);
      stream.push_back(std::move(m));
    }
    EXPECT_EQ(engine.sequence(), 20u);
    expected = to_text(engine.materialize());
  }
  const auto recovered = DurableEngine::recover(dir);
  EXPECT_EQ(recovered->sequence(), 20u);
  EXPECT_EQ(recovered->stats().recovery.replayed_records, 20u);
  EXPECT_EQ(to_text(recovered->materialize()), expected);
  expect_bit_identical(*recovered, oracle_at(7, stream, 20), "clean");
  // The recovered engine keeps serving writes.
  EXPECT_NO_THROW(recovered->apply(EdgeMutation::remove_edge(0)));
  EXPECT_EQ(recovered->sequence(), 21u);
}

TEST(DurableEngine, CheckpointShortensReplayAndPrunes) {
  const std::string dir = fresh_dir("ckpt");
  std::mt19937_64 rng(11);
  std::vector<EdgeMutation> stream;
  std::size_t edges = base_graph(11).edge_count();
  {
    DurableEngine engine(base_graph(11), dir, {});
    for (int i = 0; i < 12; ++i) {
      EdgeMutation m = random_mutation(rng, engine.node_count(), edges);
      if (m.kind == EdgeMutation::Kind::kAddEdge) ++edges;
      engine.apply(m);
      stream.push_back(std::move(m));
    }
    engine.checkpoint();
    EXPECT_EQ(engine.stats().checkpoint_sequence, 12u);
    for (int i = 0; i < 5; ++i) {
      EdgeMutation m = random_mutation(rng, engine.node_count(), edges);
      if (m.kind == EdgeMutation::Kind::kAddEdge) ++edges;
      engine.apply(m);
      stream.push_back(std::move(m));
    }
    // Pruning removed the rotated-away generation.
    EXPECT_FALSE(fs::exists(DurableEngine::checkpoint_path(dir, 0)));
    EXPECT_FALSE(fs::exists(DurableEngine::wal_path(dir, 0)));
  }
  const auto recovered = DurableEngine::recover(dir);
  EXPECT_EQ(recovered->sequence(), 17u);
  // Only the post-checkpoint suffix replays.
  EXPECT_EQ(recovered->stats().recovery.replayed_records, 5u);
  EXPECT_EQ(recovered->stats().recovery.checkpoint_sequence, 12u);
  expect_bit_identical(*recovered, oracle_at(11, stream, 17), "ckpt");
}

TEST(DurableEngine, MissingWalAfterCheckpointRecoversAtCheckpoint) {
  // The crash-between-rename-and-rotation window: the new checkpoint
  // committed but its (empty) WAL never got created.
  const std::string dir = fresh_dir("no_wal");
  {
    DurableEngine engine(base_graph(3), dir, {});
    engine.apply(EdgeMutation::remove_edge(0));
    engine.checkpoint();
  }
  fs::remove(DurableEngine::wal_path(dir, 1));
  const auto recovered = DurableEngine::recover(dir);
  EXPECT_EQ(recovered->sequence(), 1u);
  EXPECT_EQ(recovered->stats().recovery.replayed_records, 0u);
  // And the WAL was recreated so new mutations land normally.
  recovered->apply(EdgeMutation::remove_edge(1));
  EXPECT_EQ(recovered->sequence(), 2u);
}

TEST(DurableEngine, FallbackChainsThroughRotatedWals) {
  // Corrupt the NEWEST checkpoint with pruning off: recovery must fall
  // back to the older checkpoint AND chain through both WAL
  // generations — records living only in the newer log must survive.
  const std::string dir = fresh_dir("chain");
  DurableOptions options;
  options.prune_old_files = false;
  std::mt19937_64 rng(13);
  std::vector<EdgeMutation> stream;
  std::size_t edges = base_graph(13).edge_count();
  {
    DurableEngine engine(base_graph(13), dir, options);
    for (int i = 0; i < 6; ++i) {
      EdgeMutation m = random_mutation(rng, engine.node_count(), edges);
      if (m.kind == EdgeMutation::Kind::kAddEdge) ++edges;
      engine.apply(m);
      stream.push_back(std::move(m));
    }
    engine.checkpoint();
    for (int i = 0; i < 4; ++i) {
      EdgeMutation m = random_mutation(rng, engine.node_count(), edges);
      if (m.kind == EdgeMutation::Kind::kAddEdge) ++edges;
      engine.apply(m);
      stream.push_back(std::move(m));
    }
  }
  // Flip a byte in the middle of checkpoint-6's body.
  const std::string ckpt = DurableEngine::checkpoint_path(dir, 6);
  std::string text = read_text_file(ckpt);
  text[text.size() / 2] ^= 0x20;
  write_text_file(ckpt, text);

  const auto recovered = DurableEngine::recover(dir, options);
  EXPECT_EQ(recovered->stats().recovery.checkpoints_rejected, 1u);
  EXPECT_EQ(recovered->stats().recovery.checkpoint_sequence, 0u);
  EXPECT_EQ(recovered->stats().recovery.replayed_records, 10u);
  EXPECT_EQ(recovered->sequence(), 10u);
  expect_bit_identical(*recovered, oracle_at(13, stream, 10), "chain");
}

TEST(DurableEngine, EdgeIdMismatchInLogIsRefused) {
  const std::string dir = fresh_dir("id_mismatch");
  { DurableEngine engine(base_graph(5), dir, {}); }
  {
    // Forge a record whose assigned id does not match what replay will
    // hand out (an add on a 24-edge base must get id 24, not 99).
    const auto replayed = Wal::replay(DurableEngine::wal_path(dir, 0));
    Wal wal(DurableEngine::wal_path(dir, 0), WalOptions{}, 0,
            replayed.records.empty() ? 1
                                     : replayed.records.back().sequence + 1);
    wal.append(EdgeMutation::add_edge(0, 1, 'a', Presence::always(),
                                      Latency::constant(1)),
               /*assigned_edge=*/99);
    wal.sync();
  }
  EXPECT_THROW((void)DurableEngine::recover(dir), RecoveryError);
}

TEST(DurableEngine, SyncPolicyLagIsVisibleAndRecoveryKeepsSyncedPrefix) {
  const std::string dir = fresh_dir("lag");
  DurableOptions options;
  options.wal.sync = SyncPolicy::kEveryN;
  options.wal.every_n = 4;
  {
    DurableEngine engine(base_graph(9), dir, options);
    for (int i = 0; i < 6; ++i) {
      engine.apply(EdgeMutation::override_latency(EdgeId(i),
                                                  Latency::constant(2)));
    }
    const auto s = engine.stats();
    EXPECT_EQ(s.sequence, 6u);
    EXPECT_EQ(s.wal.synced_sequence, 4u);  // appends 5, 6 are the lag
    engine.sync();
    EXPECT_EQ(engine.stats().wal.synced_sequence, 6u);
  }
  // Clean close: everything reached the file, so recovery sees all 6
  // (the lag is a guarantee floor, not a ceiling).
  const auto recovered = DurableEngine::recover(dir, options);
  EXPECT_GE(recovered->sequence(), 6u);
}

TEST(DurableEngine, WalStatsAccumulateAcrossRotation) {
  const std::string dir = fresh_dir("stats");
  DurableEngine engine(base_graph(2), dir, {});
  for (int i = 0; i < 3; ++i) {
    engine.apply(EdgeMutation::remove_edge(EdgeId(i)));
  }
  const auto before = engine.stats();
  EXPECT_EQ(before.wal.appends, 3u);
  EXPECT_GT(before.wal.bytes_written, 0u);
  engine.checkpoint();
  engine.apply(EdgeMutation::remove_edge(3));
  const auto after = engine.stats();
  // Rotation must not reset the counters the stats section reports.
  EXPECT_EQ(after.wal.appends, 4u);
  EXPECT_GT(after.wal.bytes_written, before.wal.bytes_written);
  EXPECT_EQ(after.checkpoints_written, 2u);  // fresh-init + explicit
  EXPECT_EQ(after.sequence, 4u);
}

// ---------------------------------------------------------------------------
// The torture matrix
// ---------------------------------------------------------------------------

struct TortureOutcome {
  std::uint64_t acked{0};      // applies that returned
  std::uint64_t attempted{0};  // applies started (acked + <=1 in-flight)
  bool crashed{false};
};

/// One schedule: run a seeded workload against an armed site until the
/// injected fault fires (or the workload completes), then recover and
/// compare against the oracle prefix.
void run_torture_schedule(const std::string& site, std::uint64_t seed,
                          bool use_error_kind, const std::string& tag) {
  SCOPED_TRACE("site=" + site + " seed=" + std::to_string(seed) +
               " kind=" + (use_error_kind ? "error" : "crash"));
  const FailPointGuard guard;
  const std::string dir = fresh_dir(tag);
  std::mt19937_64 rng(seed * 2654435761u + 1);

  std::vector<EdgeMutation> stream;
  TortureOutcome outcome;
  std::size_t edges = base_graph(seed).edge_count();
  {
    DurableEngine engine(base_graph(seed), dir, {});  // kAlways

    // Arm AFTER the fresh-init checkpoint so the fault lands somewhere
    // in the workload below. hit_no and the torn-write arg come from
    // the seed: every schedule is replayable from its coordinates.
    const std::uint64_t hit_no = 1 + rng() % 5;
    const std::uint64_t arg = rng() % 96;
    const FailPointAction action = use_error_kind
                                       ? FailPointAction::error()
                                       : FailPointAction::crash(arg);
    FailPointRegistry::instance().arm_on_hit(site, hit_no, action);

    try {
      for (int i = 0; i < 40; ++i) {
        EdgeMutation m = random_mutation(rng, engine.node_count(), edges);
        const bool is_add = m.kind == EdgeMutation::Kind::kAddEdge;
        stream.push_back(m);
        ++outcome.attempted;
        engine.apply(m);
        ++outcome.acked;
        if (is_add) ++edges;
        if (i % 13 == 12) engine.checkpoint();
      }
      engine.checkpoint();
    } catch (const CrashInjected&) {
      outcome.crashed = true;  // simulated process death: abandon engine
    } catch (const FailPointError&) {
      outcome.crashed = true;  // simulated syscall failure: stop, recover
    } catch (const IoError&) {
      outcome.crashed = true;  // e.g. WAL poisoned after failed rotation
    }
  }
  FailPointRegistry::instance().disarm_all();

  const auto recovered = DurableEngine::recover(dir);
  const std::uint64_t r = recovered->sequence();

  // Zero acknowledged loss (kAlways: acked == fsynced), and nothing
  // recovered that was never attempted. An unacked in-flight mutation
  // MAY survive (crash after append, before the ack) — that is the
  // at-least guarantee, not a violation.
  ASSERT_GE(r, outcome.acked);
  ASSERT_LE(r, outcome.attempted);

  // Bit-identity against the no-crash oracle at the recovered prefix.
  expect_bit_identical(*recovered, oracle_at(seed, stream, r), "torture");

  // And the recovered engine is live: it accepts a write and survives
  // ANOTHER recovery (recover-of-recovered is exact, not lossy).
  recovered->apply(EdgeMutation::remove_edge(0));
  EXPECT_EQ(recovered->sequence(), r + 1);
}

TEST(RecoveryTorture, SeededFaultMatrix) {
  const std::uint64_t base = env_seed();
  const std::vector<std::string> sites = {
      "wal.append.before", "wal.append.partial", "wal.append.after",
      "wal.fsync",         "checkpoint.write",   "checkpoint.fsync",
      "checkpoint.rename",
  };
  // 7 sites x 2 fault kinds x 2 rounds = 28 schedules per run; CI
  // sweeps 16 TVG_RECOVERY_SEED values for 448 schedules total.
  int schedule = 0;
  for (const std::string& site : sites) {
    for (const bool use_error : {false, true}) {
      for (std::uint64_t round = 0; round < 2; ++round) {
        run_torture_schedule(
            site, base * 1000 + round * 100 + std::uint64_t(schedule),
            use_error, "torture_" + std::to_string(base) + "_" +
                           std::to_string(schedule) + "_" +
                           std::to_string(round));
        ++schedule;
      }
    }
  }
}

TEST(RecoveryTorture, SeededRandomSiteSoak) {
  // Seeded per-hit coin over EVERY site at once: the same seed replays
  // the same multi-site fault schedule. Complements the matrix above
  // with faults at unplanned combinations of hits.
  const std::uint64_t base = env_seed();
  const std::vector<std::string> sites = {
      "wal.append.before", "wal.append.partial", "wal.append.after",
      "wal.fsync",         "checkpoint.write",   "checkpoint.rename",
  };
  for (std::uint64_t round = 0; round < 2; ++round) {
    const std::uint64_t seed = base * 31 + round;
    SCOPED_TRACE("soak seed=" + std::to_string(seed));
    const FailPointGuard guard;
    const std::string dir =
        fresh_dir("soak_" + std::to_string(base) + "_" +
                  std::to_string(round));
    std::mt19937_64 rng(seed ^ 0x9E3779B97F4A7C15ULL);

    std::vector<EdgeMutation> stream;
    std::uint64_t acked = 0;
    std::size_t edges = base_graph(seed).edge_count();
    {
      DurableEngine engine(base_graph(seed), dir, {});
      for (std::size_t i = 0; i < sites.size(); ++i) {
        FailPointRegistry::instance().arm_seeded(
            sites[i], seed + i, 60000, FailPointAction::crash(rng() % 64));
      }
      try {
        for (int i = 0; i < 60; ++i) {
          EdgeMutation m = random_mutation(rng, engine.node_count(), edges);
          const bool is_add = m.kind == EdgeMutation::Kind::kAddEdge;
          stream.push_back(m);
          engine.apply(m);
          ++acked;
          if (is_add) ++edges;
          if (i % 17 == 16) engine.checkpoint();
        }
      } catch (const CrashInjected&) {
      } catch (const IoError&) {
      }
    }
    FailPointRegistry::instance().disarm_all();

    const auto recovered = DurableEngine::recover(dir);
    const std::uint64_t r = recovered->sequence();
    ASSERT_GE(r, acked);
    ASSERT_LE(r, stream.size());
    expect_bit_identical(*recovered, oracle_at(seed, stream, r), "soak");
  }
}

// ---------------------------------------------------------------------------
// Concurrency (TSan lane): apply / checkpoint / read racing freely.
// ---------------------------------------------------------------------------

TEST(RecoveryConcurrency, ConcurrentApplyCheckpointReadThenRecover) {
  const std::string dir = fresh_dir("concurrent");
  std::string final_text;
  std::uint64_t final_seq = 0;
  {
    DurableEngine engine(base_graph(21), dir, {});
    const auto writer = [&engine](std::uint64_t seed) {
      std::mt19937_64 rng(seed);
      for (int i = 0; i < 30; ++i) {
        // Only override_latency/patch_presence on BASE edges: valid
        // regardless of interleaving, so both writers run lock-free of
        // each other's edge-count changes.
        const auto e = static_cast<EdgeId>(rng() % 24);
        if (rng() % 2 == 0) {
          engine.apply(EdgeMutation::override_latency(
              e, Latency::constant(1 + Time(rng() % 3))));
        } else {
          IntervalSet pattern;
          pattern.insert_point(static_cast<Time>(rng() % 6));
          engine.apply(EdgeMutation::patch_presence(
              e, Presence::periodic(6, std::move(pattern))));
        }
      }
    };
    std::thread w1(writer, 101);
    std::thread w2(writer, 202);
    std::thread checkpointer([&engine] {
      for (int i = 0; i < 4; ++i) engine.checkpoint();
    });
    std::thread reader([&engine] {
      for (int i = 0; i < 20; ++i) {
        (void)engine.run(JourneyQuery::foremost(0, 0));
        (void)engine.stats();
      }
    });
    w1.join();
    w2.join();
    checkpointer.join();
    reader.join();
    EXPECT_EQ(engine.sequence(), 60u);
    final_seq = engine.sequence();
    final_text = to_text(engine.materialize());
  }
  // The WAL order IS the order: whatever interleaving happened,
  // recovery reproduces the pre-shutdown state byte for byte.
  const auto recovered = DurableEngine::recover(dir);
  EXPECT_EQ(recovered->sequence(), final_seq);
  EXPECT_EQ(to_text(recovered->materialize()), final_text);
}

}  // namespace
}  // namespace tvg
