// Unit tests for the random TVG workload generators.
#include <gtest/gtest.h>

#include "tvg/generators.hpp"

namespace tvg {
namespace {

TEST(EdgeMarkovian, DeterministicPerSeed) {
  EdgeMarkovianParams params;
  params.nodes = 12;
  params.seed = 42;
  const TimeVaryingGraph a = make_edge_markovian(params);
  const TimeVaryingGraph b = make_edge_markovian(params);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (EdgeId e = 0; e < a.edge_count(); ++e) {
    EXPECT_EQ(a.edge(e).from, b.edge(e).from);
    EXPECT_EQ(a.edge(e).to, b.edge(e).to);
    for (Time t = 0; t < params.horizon; t += 7) {
      EXPECT_EQ(a.edge(e).present(t), b.edge(e).present(t));
    }
  }
}

TEST(EdgeMarkovian, SchedulesLiveWithinHorizon) {
  EdgeMarkovianParams params;
  params.nodes = 10;
  params.horizon = 50;
  params.seed = 7;
  const TimeVaryingGraph g = make_edge_markovian(params);
  EXPECT_GT(g.edge_count(), 0u);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_FALSE(g.edge(e).present(params.horizon));
    EXPECT_FALSE(g.edge(e).present(params.horizon + 100));
  }
  EXPECT_TRUE(g.all_semi_periodic());
  EXPECT_TRUE(g.all_constant_latency());
}

TEST(EdgeMarkovian, UndirectedSharesSchedules) {
  EdgeMarkovianParams params;
  params.nodes = 8;
  params.seed = 3;
  params.directed = false;
  const TimeVaryingGraph g = make_edge_markovian(params);
  ASSERT_EQ(g.edge_count() % 2, 0u);
  for (EdgeId e = 0; e + 1 < g.edge_count(); e += 2) {
    EXPECT_EQ(g.edge(e).from, g.edge(e + 1).to);
    EXPECT_EQ(g.edge(e).to, g.edge(e + 1).from);
    for (Time t = 0; t < params.horizon; t += 5) {
      EXPECT_EQ(g.edge(e).present(t), g.edge(e + 1).present(t));
    }
  }
}

TEST(EdgeMarkovian, DensityRespondsToParameters) {
  EdgeMarkovianParams sparse;
  sparse.nodes = 14;
  sparse.initial_on = 0.01;
  sparse.p_birth = 0.01;
  sparse.p_death = 0.5;
  sparse.seed = 9;
  EdgeMarkovianParams dense = sparse;
  dense.initial_on = 0.9;
  dense.p_birth = 0.5;
  dense.p_death = 0.01;
  Time sparse_measure = 0;
  Time dense_measure = 0;
  const TimeVaryingGraph gs = make_edge_markovian(sparse);
  const TimeVaryingGraph gd = make_edge_markovian(dense);
  for (EdgeId e = 0; e < gs.edge_count(); ++e) {
    for (Time t = 0; t < sparse.horizon; ++t) {
      sparse_measure += gs.edge(e).present(t) ? 1 : 0;
    }
  }
  for (EdgeId e = 0; e < gd.edge_count(); ++e) {
    for (Time t = 0; t < dense.horizon; ++t) {
      dense_measure += gd.edge(e).present(t) ? 1 : 0;
    }
  }
  EXPECT_GT(dense_measure, sparse_measure * 2);
}

TEST(RandomPeriodic, StaysInTheDecidableFragment) {
  RandomPeriodicParams params;
  params.nodes = 6;
  params.edges = 20;
  params.period = 6;
  params.seed = 5;
  const TimeVaryingGraph g = make_random_periodic(params);
  EXPECT_EQ(g.edge_count(), 20u);
  EXPECT_TRUE(g.all_semi_periodic());
  EXPECT_TRUE(g.all_constant_latency());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(g.edge(e).presence.period(), params.period);
    // Patterns repeat with the period.
    for (Time t = 0; t < 3 * params.period; ++t) {
      EXPECT_EQ(g.edge(e).present(t), g.edge(e).present(t + params.period));
    }
  }
}

TEST(RandomPeriodic, EveryEdgeIsAlive) {
  RandomPeriodicParams params;
  params.density = 0.01;  // would often round to empty without the fix
  params.edges = 30;
  params.seed = 11;
  const TimeVaryingGraph g = make_random_periodic(params);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_TRUE(g.edge(e).presence.next_present(0).has_value());
  }
}

TEST(RandomScheduled, WindowsWithinHorizon) {
  RandomScheduledParams params;
  params.nodes = 6;
  params.edges = 15;
  params.horizon = 40;
  params.seed = 2;
  const TimeVaryingGraph g = make_random_scheduled(params);
  EXPECT_EQ(g.edge_count(), 15u);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_FALSE(g.edge(e).present(params.horizon + 1));
  }
}

TEST(RandomScheduled, AlphabetRespected) {
  RandomScheduledParams params;
  params.alphabet = "xyz";
  params.seed = 4;
  const TimeVaryingGraph g = make_random_scheduled(params);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_NE(params.alphabet.find(g.edge(e).label), std::string::npos);
  }
}

}  // namespace
}  // namespace tvg
