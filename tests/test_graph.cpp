// Unit tests for the time-varying graph container and its snapshots.
#include <gtest/gtest.h>

#include "tvg/dot.hpp"
#include "tvg/graph.hpp"

namespace tvg {
namespace {

TimeVaryingGraph make_triangle() {
  TimeVaryingGraph g;
  const NodeId u = g.add_node("u");
  const NodeId v = g.add_node("v");
  const NodeId w = g.add_node("w");
  g.add_edge(u, v, 'a', Presence::intervals(IntervalSet::single(0, 5)),
             Latency::constant(1), "uv");
  g.add_edge(v, w, 'b', Presence::intervals(IntervalSet::single(3, 8)),
             Latency::constant(2), "vw");
  g.add_edge(w, u, 'c', Presence::always(), Latency::constant(1), "wu");
  return g;
}

TEST(Graph, NodesAndNames) {
  TimeVaryingGraph g;
  const NodeId a = g.add_node("alpha");
  const NodeId b = g.add_node();
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.node_name(a), "alpha");
  EXPECT_EQ(g.node_name(b), "v1");
  EXPECT_EQ(g.find_node("alpha"), a);
  EXPECT_EQ(g.find_node("nope"), std::nullopt);
  const NodeId first = g.add_nodes(3);
  EXPECT_EQ(first, 2u);
  EXPECT_EQ(g.node_count(), 5u);
}

TEST(Graph, EdgesAndAdjacency) {
  const TimeVaryingGraph g = make_triangle();
  EXPECT_EQ(g.edge_count(), 3u);
  ASSERT_EQ(g.out_edges(0).size(), 1u);
  EXPECT_EQ(g.edge(g.out_edges(0)[0]).to, 1u);
  ASSERT_EQ(g.in_edges(0).size(), 1u);
  EXPECT_EQ(g.edge(g.in_edges(0)[0]).from, 2u);
  EXPECT_EQ(g.out_edges_labeled(0, 'a').size(), 1u);
  EXPECT_TRUE(g.out_edges_labeled(0, 'b').empty());
}

TEST(Graph, AlphabetIsSortedUnique) {
  const TimeVaryingGraph g = make_triangle();
  EXPECT_EQ(g.alphabet(), "abc");
}

TEST(Graph, SnapshotReflectsPresence) {
  const TimeVaryingGraph g = make_triangle();
  EXPECT_EQ(g.snapshot(0).size(), 2u);  // uv and wu
  EXPECT_EQ(g.snapshot(4).size(), 3u);  // all
  EXPECT_EQ(g.snapshot(6).size(), 2u);  // vw and wu
  EXPECT_EQ(g.snapshot(100).size(), 1u);  // wu only
}

TEST(Graph, FragmentPredicates) {
  TimeVaryingGraph g = make_triangle();
  EXPECT_TRUE(g.all_semi_periodic());
  EXPECT_TRUE(g.all_constant_latency());
  g.add_edge(0, 1, 'd',
             Presence::predicate([](Time t) { return t == 3; }, "pt"),
             Latency::constant(1));
  EXPECT_FALSE(g.all_semi_periodic());
  TimeVaryingGraph h = make_triangle();
  h.add_edge(0, 1, 'd', Presence::always(), Latency::affine(1, 0));
  EXPECT_FALSE(h.all_constant_latency());
}

TEST(Graph, DeterminismCheckFindsCollisions) {
  TimeVaryingGraph g;
  const NodeId u = g.add_node();
  const NodeId v = g.add_node();
  g.add_edge(u, v, 'a', Presence::intervals(IntervalSet::single(0, 10)),
             Latency::constant(1));
  EXPECT_EQ(g.first_nondeterministic_instant(0, 20), std::nullopt);
  // A second 'a' edge overlapping at t in [5,10) breaks determinism.
  g.add_edge(u, u, 'a', Presence::intervals(IntervalSet::single(5, 15)),
             Latency::constant(1));
  const auto clash = g.first_nondeterministic_instant(0, 20);
  ASSERT_TRUE(clash.has_value());
  EXPECT_EQ(clash->first, 5);
  EXPECT_EQ(clash->second, u);
  // Different labels never clash.
  TimeVaryingGraph h;
  const NodeId x = h.add_node();
  h.add_edge(x, x, 'a', Presence::always(), Latency::constant(1));
  h.add_edge(x, x, 'b', Presence::always(), Latency::constant(1));
  EXPECT_EQ(h.first_nondeterministic_instant(0, 10), std::nullopt);
}

TEST(Graph, AddEdgeValidatesNodeIds) {
  TimeVaryingGraph g;
  g.add_node();
  EXPECT_THROW(
      g.add_edge(0, 5, 'a', Presence::always(), Latency::constant(1)),
      std::out_of_range);
  EXPECT_THROW(
      g.add_edge(5, 0, 'a', Presence::always(), Latency::constant(1)),
      std::out_of_range);
}

TEST(Graph, StaticEdgeConvenience) {
  TimeVaryingGraph g;
  g.add_nodes(2);
  const EdgeId e = g.add_static_edge(0, 1, 'x', 7);
  EXPECT_TRUE(g.edge(e).present(0));
  EXPECT_TRUE(g.edge(e).present(1'000'000));
  EXPECT_EQ(g.edge(e).arrival(10), 17);
}

TEST(Graph, ToStringListsEdges) {
  const TimeVaryingGraph g = make_triangle();
  const std::string s = g.to_string();
  EXPECT_NE(s.find("u -a-> v"), std::string::npos);
  EXPECT_NE(s.find("3 nodes"), std::string::npos);
}

TEST(Dot, ExportContainsStructure) {
  const TimeVaryingGraph g = make_triangle();
  DotOptions opt;
  opt.highlight_node = "w";
  opt.start_node = "u";
  const std::string dot = to_dot(g, opt);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"u\" -> \"v\""), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("__start ->"), std::string::npos);
}

TEST(Dot, SchedulesCanBeHidden) {
  const TimeVaryingGraph g = make_triangle();
  DotOptions opt;
  opt.show_schedules = false;
  EXPECT_EQ(to_dot(g, opt).find("ρ"), std::string::npos);
}

}  // namespace
}  // namespace tvg
