// E5 — Theorem 2.3: L_wait[d] = L_nowait. The dilation construction
// neutralizes d-bounded waiting; on the semi-periodic fragment the
// equality L_wait[d](dilate(G, d+1)) = L_nowait(G) is checked EXACTLY
// (minimal-DFA equivalence), and on Figure 1 by exhaustive sampling.
#include <gtest/gtest.h>

#include "core/constructions.hpp"
#include "core/expressivity.hpp"
#include "core/periodic_nfa.hpp"
#include "tvg/generators.hpp"

namespace tvg::core {
namespace {

TEST(Dilation, GraphStructureIsPreserved) {
  RandomPeriodicParams gen;
  gen.nodes = 4;
  gen.edges = 8;
  gen.seed = 1;
  const TimeVaryingGraph g = make_random_periodic(gen);
  const TimeVaryingGraph d = dilate(g, 3);
  ASSERT_EQ(d.node_count(), g.node_count());
  ASSERT_EQ(d.edge_count(), g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(d.edge(e).from, g.edge(e).from);
    EXPECT_EQ(d.edge(e).to, g.edge(e).to);
    EXPECT_EQ(d.edge(e).label, g.edge(e).label);
  }
}

TEST(Dilation, ScheduleCorrespondence) {
  RandomPeriodicParams gen;
  gen.nodes = 4;
  gen.edges = 8;
  gen.max_latency = 3;
  gen.seed = 2;
  const TimeVaryingGraph g = make_random_periodic(gen);
  for (const Time s : {2, 3, 5}) {
    const TimeVaryingGraph d = dilate(g, s);
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      for (Time t = 0; t < 40; ++t) {
        // Present at s·t iff originally present at t; absent elsewhere.
        EXPECT_EQ(d.edge(e).present(s * t), g.edge(e).present(t));
        if (t % s != 0) {
          EXPECT_FALSE(d.edge(e).present(t));
        }
      }
      for (Time t = 0; t < 40; ++t) {
        if (g.edge(e).present(t)) {
          EXPECT_EQ(d.edge(e).arrival(s * t), s * g.edge(e).arrival(t));
        }
      }
    }
  }
}

TEST(Dilation, FactorOneIsIdentityOnLanguages) {
  const TvgAutomaton a = make_anbn_tvg(2, 3).automaton();
  const TvgAutomaton d = dilate(a, 1);
  for (const Word& w : all_words("ab", 6)) {
    EXPECT_EQ(a.accepts(w, Policy::no_wait()).accepted,
              d.accepts(w, Policy::no_wait()).accepted)
        << w;
  }
}

TEST(Dilation, PreservesNoWaitLanguageExactlyOnTheFragment) {
  // L_nowait(dilate(G, s)) == L_nowait(G), via minimal DFAs.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RandomPeriodicParams gen;
    gen.nodes = 4;
    gen.edges = 10;
    gen.period = 4;
    gen.max_latency = 2;
    gen.seed = seed;
    TimeVaryingGraph g = make_random_periodic(gen);
    TvgAutomaton a(std::move(g), 0);
    a.set_initial(0);
    a.set_accepting(3);
    const fa::Dfa original =
        fa::Dfa::determinize(semi_periodic_to_nfa(a, Policy::no_wait()))
            .minimized();
    for (const Time s : {2, 3, 5}) {
      const TvgAutomaton d = dilate(a, s);
      const fa::Dfa dilated =
          fa::Dfa::determinize(semi_periodic_to_nfa(d, Policy::no_wait()))
              .minimized();
      Word counterexample;
      EXPECT_TRUE(fa::Dfa::equivalent(original, dilated, &counterexample))
          << "seed=" << seed << " s=" << s << " differs on '"
          << counterexample << "'";
    }
  }
}

TEST(Thm23, BoundedWaitOnDilatedGraphEqualsNoWaitExactly) {
  // The theorem's engine, machine-checked: for every seed and every d,
  //   L_wait[d](dilate(G, d+1)) == L_nowait(dilate(G, d+1))
  //                             == L_nowait(G).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RandomPeriodicParams gen;
    gen.nodes = 4;
    gen.edges = 10;
    gen.period = 4;
    gen.max_latency = 2;
    gen.seed = seed;
    TimeVaryingGraph g = make_random_periodic(gen);
    TvgAutomaton a(std::move(g), 0);
    a.set_initial(0);
    a.set_accepting(3);
    const fa::Dfa nowait_orig =
        fa::Dfa::determinize(semi_periodic_to_nfa(a, Policy::no_wait()))
            .minimized();
    for (const Time d : {1, 2, 4, 7}) {
      const TvgAutomaton dil = dilate(a, d + 1);
      const fa::Dfa bounded =
          fa::Dfa::determinize(
              semi_periodic_to_nfa(dil, Policy::bounded_wait(d)))
              .minimized();
      Word counterexample;
      EXPECT_TRUE(fa::Dfa::equivalent(nowait_orig, bounded, &counterexample))
          << "seed=" << seed << " d=" << d << " differs on '"
          << counterexample << "'";
    }
  }
}

TEST(Thm23, WaitingStrictlyShorterThanTheDilationGapIsUseless) {
  // Even d' < d (not just d' = d) is neutralized by dilate(G, d+1).
  RandomPeriodicParams gen;
  gen.nodes = 5;
  gen.edges = 12;
  gen.period = 3;
  gen.seed = 99;
  TimeVaryingGraph g = make_random_periodic(gen);
  TvgAutomaton a(std::move(g), 0);
  a.set_initial(0);
  a.set_accepting(4);
  const TvgAutomaton dil = dilate(a, 8);
  const fa::Dfa nowait =
      fa::Dfa::determinize(semi_periodic_to_nfa(dil, Policy::no_wait()))
          .minimized();
  for (const Time d : {1, 2, 3, 7}) {
    const fa::Dfa bounded =
        fa::Dfa::determinize(
            semi_periodic_to_nfa(dil, Policy::bounded_wait(d)))
            .minimized();
    EXPECT_TRUE(fa::Dfa::equivalent(nowait, bounded)) << "d=" << d;
  }
}

TEST(Thm23, WaitingEqualToTheGapBreaksTheConstruction) {
  // Sanity check that the dilation factor must exceed d: with d = s the
  // next event IS reachable, so bounded waiting can genuinely add words.
  // (On some seeds the language happens to coincide; use a crafted relay
  // where waiting provably helps.)
  TimeVaryingGraph g;
  const NodeId u = g.add_node();
  const NodeId v = g.add_node();
  const NodeId w = g.add_node();
  g.add_edge(u, v, 'a', Presence::at_times({0}), Latency::constant(1));
  g.add_edge(v, w, 'b', Presence::at_times({2}), Latency::constant(1));
  TvgAutomaton a(std::move(g), 0);
  a.set_initial(u);
  a.set_accepting(w);
  // Direct journeys: a arrives v at 1, b departs at 2 — needs wait 1.
  EXPECT_FALSE(a.accepts("ab", Policy::no_wait()).accepted);
  EXPECT_TRUE(a.accepts("ab", Policy::bounded_wait(1)).accepted);
  const TvgAutomaton dil = dilate(a, 2);  // events at 0, 4; gap = 2
  // d = 1 < s = 2: still useless.
  EXPECT_FALSE(dil.accepts("ab", Policy::bounded_wait(1)).accepted);
  // d = 2 = s: the dilated wait (2·1 = 2) is reachable again.
  EXPECT_TRUE(dil.accepts("ab", Policy::bounded_wait(2)).accepted);
}

TEST(Thm23, DilationOnFigure1BySampling) {
  // Figure 1 is outside the fragment; check the dilation equalities on
  // exhaustive words. dilate by s = d+1 and compare word by word:
  //   L_wait[d](dilate(G, d+1)) == L_nowait(G).
  const TvgAutomaton a = make_anbn_tvg(2, 3).automaton();
  for (const Time d : {1, 3}) {
    const TvgAutomaton dil = dilate(a, d + 1);
    for (const Word& w : all_words("ab", 8)) {
      EXPECT_EQ(dil.accepts(w, Policy::bounded_wait(d)).accepted,
                a.accepts(w, Policy::no_wait()).accepted)
          << "d=" << d << " w='" << w << "'";
    }
  }
}

TEST(Thm23, NoWaitIsAlwaysContainedInBoundedWait) {
  // The trivial inclusion of the theorem's equality, on random scheduled
  // graphs (no dilation): L_nowait ⊆ L_wait[d] for every d.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RandomScheduledParams gen;
    gen.nodes = 5;
    gen.edges = 14;
    gen.horizon = 24;
    gen.seed = seed;
    TimeVaryingGraph g = make_random_scheduled(gen);
    TvgAutomaton a(std::move(g), 0);
    a.set_initial(0);
    a.set_accepting(2);
    AcceptOptions opt;
    opt.horizon = 60;
    for (const Word& w : all_words("ab", 4)) {
      if (a.accepts(w, Policy::no_wait(), opt).accepted) {
        for (const Time d : {0, 1, 5}) {
          EXPECT_TRUE(a.accepts(w, Policy::bounded_wait(d), opt).accepted)
              << "seed=" << seed << " d=" << d << " w='" << w << "'";
        }
      }
    }
  }
}

TEST(Dilation, InvalidFactorThrows) {
  const TvgAutomaton a = make_anbn_tvg(2, 3).automaton();
  EXPECT_THROW(dilate(a, 0), std::invalid_argument);
  EXPECT_THROW(dilate(a.graph(), -2), std::invalid_argument);
}

}  // namespace
}  // namespace tvg::core
