// Regression tests for the shared policy-departure enumerator
// (src/tvg/departures.hpp) around the kTimeInfinity sentinel:
//
//  * an infinite ready time must enumerate nothing under EVERY policy —
//    previously only the kNoWait branch guarded it, and under
//    kBoundedWait the saturated max_departure window degenerated into
//    feeding the sentinel to next_present;
//  * a finite-but-near-infinite ready time must saturate to "no such
//    time" instead of overflowing Time inside next_present (exercised in
//    both the bitmask and the endpoint-run schedule modes; the ASan/
//    UBSan CI job turns the old overflow into a hard failure);
//  * Policy::max_departure saturates at kTimeInfinity;
//  * ordinary finite windows still enumerate exactly the right
//    departures under all three policies.
//
// kTimeInfinity is 2^63 - 1, which is ≡ 0 (mod 7); the period-7 cases
// below rely on that to place pattern hits deterministically right below
// the saturation boundary.
#include <gtest/gtest.h>

#include <vector>

#include "tvg/departures.hpp"
#include "tvg/graph.hpp"
#include "tvg/schedule_index.hpp"

namespace {

using namespace tvg;

std::vector<Time> collect(const ScheduleIndex& sx, EdgeId eid, Time t,
                          Policy policy, Time horizon = kTimeInfinity,
                          std::size_t wait_budget = 8) {
  std::vector<Time> deps;
  for_each_policy_departure(sx, eid, t, policy, horizon, wait_budget,
                            [&](Time dep) {
                              deps.push_back(dep);
                              return true;
                            });
  return deps;
}

/// One edge present at times ≡ offset (mod period). Period 7 compiles to
/// the bitmask mode, period 1000 to the endpoint-run mode.
TimeVaryingGraph periodic_graph(Time period, Time offset) {
  TimeVaryingGraph g;
  const NodeId u = g.add_node();
  const NodeId v = g.add_node();
  g.add_edge(u, v, 'a', Presence::periodic(period, IntervalSet::from_points({offset})),
             Latency::constant(1));
  return g;
}

TEST(PolicyMaxDeparture, SaturatesAtInfinity) {
  EXPECT_EQ(Policy::no_wait().max_departure(kTimeInfinity), kTimeInfinity);
  EXPECT_EQ(Policy::wait().max_departure(5), kTimeInfinity);
  EXPECT_EQ(Policy::bounded_wait(5).max_departure(kTimeInfinity),
            kTimeInfinity);
  // The sum would overflow; it must clamp to the sentinel instead.
  EXPECT_EQ(Policy::bounded_wait(5).max_departure(kTimeInfinity - 2),
            kTimeInfinity);
  EXPECT_EQ(Policy::bounded_wait(5).max_departure(10), 15);
}

TEST(ForEachPolicyDeparture, InfiniteReadyTimeEnumeratesNothing) {
  for (const Time period : {Time{7}, Time{1000}}) {
    const TimeVaryingGraph g = periodic_graph(period, period - 1);
    const ScheduleIndex& sx = g.schedule_index();
    for (const Policy policy :
         {Policy::no_wait(), Policy::bounded_wait(4), Policy::wait()}) {
      EXPECT_TRUE(collect(sx, 0, kTimeInfinity, policy).empty())
          << "period=" << period << " policy=" << policy.to_string();
    }
  }
}

TEST(ForEachPolicyDeparture, NearInfinityBitmaskModeSaturates) {
  // Pattern hit at 6 (mod 7): kTimeInfinity - 1 ≡ 6, so the edge's last
  // representable presence is exactly kTimeInfinity - 1.
  const TimeVaryingGraph hit = periodic_graph(7, 6);
  const ScheduleIndex& sx_hit = hit.schedule_index();
  EXPECT_EQ(collect(sx_hit, 0, kTimeInfinity - 1, Policy::wait()),
            (std::vector<Time>{kTimeInfinity - 1}));
  EXPECT_EQ(collect(sx_hit, 0, kTimeInfinity - 3, Policy::bounded_wait(100)),
            (std::vector<Time>{kTimeInfinity - 1}));

  // Pattern hit at 3 (mod 7): from kTimeInfinity - 1 the next hit sits
  // past the representable range — must saturate to "none", not
  // overflow (the pre-fix code computed from + (next - r) raw).
  const TimeVaryingGraph miss = periodic_graph(7, 3);
  const ScheduleIndex& sx_miss = miss.schedule_index();
  EXPECT_TRUE(collect(sx_miss, 0, kTimeInfinity - 1, Policy::wait()).empty());
  EXPECT_TRUE(
      collect(sx_miss, 0, kTimeInfinity - 1, Policy::bounded_wait(50))
          .empty());

  // Period 10: kTimeInfinity ≡ 7, so from kTimeInfinity - 1 (≡ 6) a
  // pattern hit at 9 sits 3 past `from` — in-copy, but past the
  // representable range. The pre-fix bitmask path overflowed here.
  const TimeVaryingGraph over = periodic_graph(10, 9);
  const ScheduleIndex& sx_over = over.schedule_index();
  EXPECT_TRUE(collect(sx_over, 0, kTimeInfinity - 1, Policy::wait()).empty());
  EXPECT_TRUE(
      collect(sx_over, 0, kTimeInfinity - 1, Policy::bounded_wait(7))
          .empty());
}

TEST(ForEachPolicyDeparture, NearInfinityEndpointRunModeSaturates) {
  // Period 1000 > the bitmask limit, so this drives the endpoint-run
  // segments and the EventCursor re-seed path near the saturation
  // boundary. kTimeInfinity ≡ 807 (mod 1000), so from kTimeInfinity - 1
  // (≡ 806) the next hit at 999 would land past kTimeInfinity.
  const TimeVaryingGraph g = periodic_graph(1000, 999);
  const ScheduleIndex& sx = g.schedule_index();
  EXPECT_TRUE(collect(sx, 0, kTimeInfinity - 1, Policy::wait()).empty());
  EXPECT_TRUE(
      collect(sx, 0, kTimeInfinity - 1, Policy::bounded_wait(5000)).empty());
  // A reachable hit below the boundary still enumerates: the last
  // representable presence is kTimeInfinity - 808 (≡ 999 mod 1000).
  const Time last_hit = kTimeInfinity - 808;
  EXPECT_EQ((last_hit - 999) % 1000, 0);
  EXPECT_EQ(collect(sx, 0, last_hit - 10, Policy::wait()),
            (std::vector<Time>{last_hit}));
}

TEST(ForEachPolicyDeparture, FiniteWindowsStillExact) {
  const TimeVaryingGraph g = periodic_graph(7, 3);  // present at 3, 10, 17...
  const ScheduleIndex& sx = g.schedule_index();
  EXPECT_EQ(collect(sx, 0, 3, Policy::no_wait()), (std::vector<Time>{3}));
  EXPECT_TRUE(collect(sx, 0, 4, Policy::no_wait()).empty());
  EXPECT_EQ(collect(sx, 0, 0, Policy::bounded_wait(10)),
            (std::vector<Time>{3, 10}));
  EXPECT_EQ(collect(sx, 0, 0, Policy::bounded_wait(2), /*horizon=*/100),
            (std::vector<Time>{}));
  EXPECT_EQ(collect(sx, 0, 0, Policy::wait(), kTimeInfinity,
                    /*wait_budget=*/3),
            (std::vector<Time>{3, 10, 17}));
  EXPECT_EQ(collect(sx, 0, 0, Policy::wait(), /*horizon=*/12),
            (std::vector<Time>{3, 10}));
}

}  // namespace
