// tvg::Server — the async serving front end.
//
// Deterministic coverage uses workers == 0 servers driven by run_one():
// submissions stack up exactly as submitted, so weighted dequeue order,
// deadline expiry at dequeue, and admission-control sheds are all
// observable without racing a worker. The Server/ServerStress suites
// also run under TSan (CI clang lane) with real workers: multi-client
// mixed-lane traffic, shed/expired accounting, poisoned queries, and
// the drain()/stop() lifecycle.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "tvg/delta_overlay.hpp"
#include "tvg/generators.hpp"
#include "tvg/graph.hpp"
#include "tvg/query_engine.hpp"
#include "tvg/retry.hpp"
#include "tvg/server.hpp"
#include "tvg/worker_pool.hpp"

namespace {

using namespace tvg;
using std::chrono::milliseconds;

TimeVaryingGraph serving_graph() {
  RandomPeriodicParams params;
  params.nodes = 10;
  params.edges = 28;
  params.period = 6;
  params.seed = 42;
  return make_random_periodic(params);
}

JourneyQuery query_for(NodeId src) {
  return JourneyQuery::foremost(src, 0)
      .under(Policy::bounded_wait(3))
      .within(SearchLimits::up_to(96));
}

ServerConfig manual_config() {
  ServerConfig config;
  config.workers = 0;  // embedder drives with run_one(): deterministic
  return config;
}

TEST(Server, FuturesMatchDirectEngineCalls) {
  const TimeVaryingGraph g = serving_graph();
  const QueryEngine engine(g, 2);
  Server server(engine);

  const JourneyQuery jq = query_for(0);
  ClosureQuery cq;
  cq.policy = Policy::wait();
  cq.limits = SearchLimits::up_to(96);
  AcceptSpec spec;
  spec.initial = {0};
  spec.accepting = {1, 2};
  spec.policy = Policy::wait();
  spec.horizon = 64;
  const std::vector<Word> words = {"ab", "ba", ""};

  auto jf = server.submit(jq);
  auto cf = server.submit(cq);
  auto af = server.submit(spec, words);

  EXPECT_TRUE(jf.get() == engine.run(jq));
  EXPECT_TRUE(cf.get() == engine.closure(cq));
  EXPECT_TRUE(af.get() == engine.accepts(spec, words));

  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.queued_now, 0u);
  EXPECT_EQ(stats.in_flight_now, 0u);
}

TEST(Server, StrictPriorityWhenEachLaneHoldsOneTask) {
  const TimeVaryingGraph g = serving_graph();
  const QueryEngine engine(g, 1);
  Server server(engine, manual_config());

  // Submit in REVERSE priority order; completion order must follow lane
  // priority, not submission order.
  std::vector<Lane> completion_order;
  const auto submit_probe = [&](Lane lane) {
    return server.submit(query_for(0), SubmitOptions::in_lane(lane));
  };
  auto batch_f = submit_probe(Lane::kBatch);
  auto normal_f = submit_probe(Lane::kNormal);
  auto high_f = submit_probe(Lane::kHigh);

  const auto ready = [](std::future<JourneyResult>& f) {
    return f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  };
  EXPECT_TRUE(server.run_one());
  EXPECT_TRUE(ready(high_f));
  EXPECT_FALSE(ready(normal_f));
  EXPECT_FALSE(ready(batch_f));
  EXPECT_TRUE(server.run_one());
  EXPECT_TRUE(ready(normal_f));
  EXPECT_FALSE(ready(batch_f));
  EXPECT_TRUE(server.run_one());
  EXPECT_TRUE(ready(batch_f));
  EXPECT_FALSE(server.run_one());  // all lanes empty
  (void)completion_order;
}

TEST(Server, WeightedDequeueNeverStarvesBatchUnderHighLoad) {
  const TimeVaryingGraph g = serving_graph();
  const QueryEngine engine(g, 1);
  ServerConfig config = manual_config();
  config.queue_capacity = {64, 64, 64};
  Server server(engine, config);

  constexpr std::size_t kPerLane = 20;
  std::vector<std::future<JourneyResult>> high;
  std::vector<std::future<JourneyResult>> batch;
  for (std::size_t i = 0; i < kPerLane; ++i) {
    high.push_back(
        server.submit(query_for(0), SubmitOptions::in_lane(Lane::kHigh)));
    batch.push_back(
        server.submit(query_for(1), SubmitOptions::in_lane(Lane::kBatch)));
  }

  // One full weight cycle with both lanes saturated serves
  // weights[kHigh] high tasks and weights[kBatch] batch tasks: after 9
  // dequeues (8 high + 1 batch with the default {8, 4, 1}), batch made
  // progress — a strict-priority queue would still have it at zero.
  const unsigned cycle = server.config().weights[0] + server.config().weights[2];
  for (unsigned i = 0; i < cycle; ++i) ASSERT_TRUE(server.run_one());
  const auto done = [](std::vector<std::future<JourneyResult>>& fs) {
    std::size_t n = 0;
    for (auto& f : fs) {
      if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_EQ(done(high), server.config().weights[0]);
  EXPECT_EQ(done(batch), server.config().weights[2]);

  server.drain();  // workers == 0: drains on this thread
  EXPECT_EQ(done(high), kPerLane);
  EXPECT_EQ(done(batch), kPerLane);
}

TEST(Server, ShedsWithOverloadedWhenLaneAtCapacity) {
  const TimeVaryingGraph g = serving_graph();
  const QueryEngine engine(g, 1);
  ServerConfig config = manual_config();
  config.queue_capacity = {1, 1, 1};
  Server server(engine, config);

  auto accepted = server.submit(query_for(0));
  auto shed = server.submit(query_for(1));

  // Fail-fast: the shed future is ready IMMEDIATELY (nothing dequeued
  // anything yet), and resolves to Overloaded.
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_THROW(shed.get(), Overloaded);

  // The accepted submission is untouched by the shed and completes.
  EXPECT_TRUE(server.run_one());
  EXPECT_TRUE(accepted.get() == engine.run(query_for(0)));

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.shed_per_lane[static_cast<std::size_t>(Lane::kNormal)], 1u);
  EXPECT_EQ(stats.completed, 1u);

  // With admission control off the same pressure queues unboundedly.
  ServerConfig fifo = manual_config();
  fifo.queue_capacity = {1, 1, 1};
  fifo.admission_control = false;
  Server unbounded(engine, fifo);
  std::vector<std::future<JourneyResult>> fs;
  for (int i = 0; i < 8; ++i) fs.push_back(unbounded.submit(query_for(0)));
  EXPECT_EQ(unbounded.stats().shed, 0u);
  EXPECT_EQ(unbounded.stats().queued_now, 8u);
  unbounded.drain();
  for (auto& f : fs) EXPECT_NO_THROW((void)f.get());
}

TEST(Server, ExpiredAtDequeueErrorsFutureWithoutExecuting) {
  const TimeVaryingGraph g = serving_graph();
  const QueryEngine engine(g, 1);
  Server server(engine, manual_config());

  // A query that would THROW if executed (source out of range): if the
  // deadline check ever let it run, the future would hold
  // std::out_of_range instead of DeadlineExceeded.
  const JourneyQuery poisoned = JourneyQuery::foremost(1000, 0);
  auto expired = server.submit(
      poisoned, SubmitOptions{}.by(SubmitOptions::Clock::now() -
                                   std::chrono::milliseconds(1)));
  auto live = server.submit(query_for(0));

  EXPECT_TRUE(server.run_one());  // dequeues + expires the first task
  EXPECT_THROW(expired.get(), DeadlineExceeded);
  EXPECT_TRUE(server.run_one());
  EXPECT_NO_THROW((void)live.get());

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);  // the poisoned query never ran
}

TEST(Server, PoisonedQueryFailsOnlyItsOwnFutureAndDrainRecovers) {
  const TimeVaryingGraph g = serving_graph();
  const QueryEngine engine(g, 2);
  Server server(engine);

  // A poisoned batch: good, bad (validation throws in the engine), good.
  auto good1 = server.submit(query_for(0));
  auto bad = server.submit(JourneyQuery::foremost(1000, 0));
  auto good2 = server.submit(query_for(1));

  EXPECT_THROW(bad.get(), std::out_of_range);
  EXPECT_TRUE(good1.get() == engine.run(query_for(0)));
  EXPECT_TRUE(good2.get() == engine.run(query_for(1)));

  // drain() after the poisoned traffic: the server settles idle and
  // both the server and the engine remain fully usable.
  server.drain();
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.queued_now, 0u);
  EXPECT_EQ(stats.in_flight_now, 0u);

  auto after = server.submit(query_for(2));
  EXPECT_TRUE(after.get() == engine.run(query_for(2)));
  EXPECT_TRUE(engine.run(query_for(2)) == engine.run(query_for(2)));
}

TEST(Server, StopDiscardsQueuedWorkAndRejectsNewSubmissions) {
  const TimeVaryingGraph g = serving_graph();
  const QueryEngine engine(g, 1);
  Server server(engine, manual_config());

  auto queued1 = server.submit(query_for(0));
  auto queued2 = server.submit(query_for(1), SubmitOptions::in_lane(Lane::kBatch));
  server.stop();

  EXPECT_THROW(queued1.get(), ServerStopped);
  EXPECT_THROW(queued2.get(), ServerStopped);

  auto rejected = server.submit(query_for(0));
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_THROW(rejected.get(), ServerStopped);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.discarded_on_stop, 2u);
  EXPECT_EQ(stats.rejected_stopped, 1u);
  server.stop();  // idempotent
  EXPECT_FALSE(server.run_one());
}

TEST(Server, DrainWaitsForInFlightWork) {
  const TimeVaryingGraph g = serving_graph();
  const QueryEngine engine(g, 2);
  Server server(engine);

  std::vector<std::future<JourneyResult>> fs;
  for (int i = 0; i < 64; ++i) {
    fs.push_back(server.submit(query_for(static_cast<NodeId>(i % 4))));
  }
  server.drain();
  for (auto& f : fs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_NO_THROW((void)f.get());
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 64u);
  EXPECT_EQ(stats.queued_now, 0u);
  EXPECT_EQ(stats.in_flight_now, 0u);
}

TEST(Server, ZeroLaneWeightIsRejected) {
  const TimeVaryingGraph g = serving_graph();
  const QueryEngine engine(g, 1);
  ServerConfig config;
  config.weights = {8, 0, 1};
  EXPECT_THROW(Server(engine, config), std::invalid_argument);
}

TEST(Server, WorkerPoolStatsObserveServedTraffic) {
  // >64 nodes: the packed closure kernel shards by 64-source word
  // group, so this graph produces a multi-task batch that actually
  // lands on the engine's WorkerPool (a <=64-node closure is one word
  // and runs serially).
  RandomPeriodicParams params;
  params.nodes = 130;
  params.edges = 400;
  params.period = 6;
  params.seed = 42;
  const TimeVaryingGraph g = make_random_periodic(params);
  const QueryEngine engine(g, 2);
  const WorkerPool::Stats before = engine.worker_stats();
  Server server(engine);

  // Closure queries fan shard batches into the engine's pool through
  // the serving workers: the pool's batch/claim counters must move.
  ClosureQuery cq;
  cq.limits = SearchLimits::up_to(96);
  cq.threads = 2;
  auto f = server.submit(cq);
  (void)f.get();
  server.drain();

  const WorkerPool::Stats after = engine.worker_stats();
  EXPECT_GT(after.batches_executed, before.batches_executed);
  EXPECT_GT(after.tasks_claimed, before.tasks_claimed);
  EXPECT_GE(after.threads_spawned, before.threads_spawned);
  EXPECT_GE(after.queue_depth_high_water, before.queue_depth_high_water);
}

// ---------------------------------------------------------------------------
// Multi-client stress — the TSan lane's serving workload.
// ---------------------------------------------------------------------------

TEST(Server, MutableBackendServesQueriesAndLiveUpdates) {
  MutableEngine engine(serving_graph(), 2);
  Server server(engine, manual_config());

  const JourneyQuery jq = query_for(0);
  auto before = server.submit(jq);
  // High-lane update: dequeued before the normal-lane query behind it.
  auto update = server.apply_update(
      EdgeMutation::add_edge(0, 5, 'a', Presence::always(),
                             Latency::constant(1), "hotfix"),
      SubmitOptions{}.in_lane(Lane::kHigh));
  auto after = server.submit(jq);
  while (server.run_one()) {
  }
  EXPECT_EQ(update.get(), engine.edge_count() - 1);  // the appended id
  // Queue order (manual server): `before` was dequeued first, so only
  // `after` sees the patched graph; both match direct engine calls.
  EXPECT_TRUE(after.get() == engine.run(jq));
  EXPECT_EQ(engine.pending_mutations(), 1u);
  (void)before.get();

  ClosureQuery cq;
  cq.limits = SearchLimits::up_to(96);
  auto cf = server.submit(cq);
  while (server.run_one()) {
  }
  EXPECT_TRUE(cf.get() == engine.closure(cq));
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.completed, 4u);
}

TEST(Server, BackendMismatchFailsTheFutureNotTheServer) {
  // accepts() needs the frozen language machinery; updates need the
  // mutable backend. Either mismatch fails only its own future.
  MutableEngine mutable_engine(serving_graph(), 1);
  Server mutable_server(mutable_engine, manual_config());
  AcceptSpec spec;
  spec.initial = {0};
  spec.accepting = {1};
  auto af = mutable_server.submit(spec, {"ab"});
  auto jf = mutable_server.submit(query_for(1));
  while (mutable_server.run_one()) {
  }
  EXPECT_THROW(af.get(), std::logic_error);
  EXPECT_TRUE(jf.get() == mutable_engine.run(query_for(1)));

  const TimeVaryingGraph g = serving_graph();
  const QueryEngine frozen(g, 1);
  Server frozen_server(frozen, manual_config());
  auto uf = frozen_server.apply_update(
      EdgeMutation::patch_presence(0, Presence::never()));
  while (frozen_server.run_one()) {
  }
  EXPECT_THROW(uf.get(), std::logic_error);
  // The failure is the task's, not the transport's: accounted as failed.
  EXPECT_EQ(frozen_server.stats().failed, 1u);
}

TEST(ServerStress, LiveUpdatesRaceQueriesThroughTheLanes) {
  // Worker-backed server over a mutable engine: updates and queries
  // interleave arbitrarily; every future must resolve and every update
  // must land exactly once (sequence() counts them).
  MutableEngine engine(serving_graph(), 2);
  ServerConfig config;
  config.workers = 3;
  Server server(engine, config);
  constexpr int kClients = 4;
  constexpr int kPerClient = 30;
  std::atomic<int> update_oks{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        if (i % 3 == 0) {
          auto f = server.apply_update(
              EdgeMutation::patch_presence(
                  static_cast<EdgeId>((c * kPerClient + i) % 28),
                  Presence::eventually_always(static_cast<Time>(i % 7))),
              SubmitOptions{}.in_lane(Lane::kHigh));
          f.get();
          update_oks.fetch_add(1);
        } else {
          auto f =
              server.submit(query_for(static_cast<NodeId>((c + i) % 10)));
          const JourneyResult r = f.get();
          ASSERT_EQ(r.arrivals.size(), 10u);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.drain();
  EXPECT_EQ(engine.sequence(),
            static_cast<std::uint64_t>(update_oks.load()));
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, std::uint64_t{kClients} * kPerClient);
  EXPECT_EQ(stats.completed, stats.submitted);
}

TEST(ServerStress, MultiClientMixedLanesAccountsEverySubmission) {
  const TimeVaryingGraph g = serving_graph();
  const QueryEngine engine(g, 2);
  ServerConfig config;
  config.workers = 3;
  config.queue_capacity = {8, 8, 8};  // small: force real sheds
  Server server(engine, config);

  constexpr unsigned kClients = 8;
  constexpr int kPerClient = 40;

  // Reference results for the four hot queries, computed up front.
  std::vector<JourneyResult> reference;
  for (NodeId v = 0; v < 4; ++v) reference.push_back(engine.run(query_for(v)));

  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> expired{0};
  std::atomic<std::uint64_t> mismatches{0};

  auto client = [&](unsigned id) {
    for (int i = 0; i < kPerClient; ++i) {
      const NodeId key = static_cast<NodeId>((id + i) % 4);
      SubmitOptions options =
          SubmitOptions::in_lane(static_cast<Lane>(i % kLaneCount));
      if (i % 7 == 0) {
        // A mix of already-expired deadlines: these must NEVER execute.
        options.by(SubmitOptions::Clock::now() - milliseconds(1));
      }
      auto f = server.submit(query_for(key), options);
      try {
        const JourneyResult r = f.get();
        ok.fetch_add(1, std::memory_order_relaxed);
        if (!(r == reference[key])) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const Overloaded&) {
        shed.fetch_add(1, std::memory_order_relaxed);
      } catch (const DeadlineExceeded&) {
        expired.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> clients;
  for (unsigned c = 0; c < kClients; ++c) clients.emplace_back(client, c);
  for (auto& t : clients) t.join();
  server.drain();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(ok.load() + shed.load() + expired.load(),
            std::uint64_t{kClients} * kPerClient);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, std::uint64_t{kClients} * kPerClient);
  EXPECT_EQ(stats.completed, ok.load());
  EXPECT_EQ(stats.shed, shed.load());
  EXPECT_EQ(stats.expired, expired.load());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.queued_now, 0u);
  EXPECT_EQ(stats.in_flight_now, 0u);
  EXPECT_EQ(stats.accepted, stats.completed + stats.expired);
}

TEST(ServerStress, ConcurrentSubmittersWithStopMidTraffic) {
  const TimeVaryingGraph g = serving_graph();
  const QueryEngine engine(g, 2);
  ServerConfig config;
  config.workers = 2;
  Server server(engine, config);

  constexpr unsigned kClients = 6;
  std::atomic<std::uint64_t> resolved{0};
  auto client = [&] {
    for (int i = 0; i < 50; ++i) {
      auto f = server.submit(query_for(static_cast<NodeId>(i % 4)));
      try {
        (void)f.get();
      } catch (const ServerStopped&) {
      } catch (const Overloaded&) {
      }
      resolved.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> clients;
  for (unsigned c = 0; c < kClients; ++c) clients.emplace_back(client);
  // Stop while clients are mid-stream: every outstanding future must
  // still resolve (value or ServerStopped) — nobody hangs.
  std::this_thread::sleep_for(milliseconds(5));
  server.stop();
  for (auto& t : clients) t.join();
  EXPECT_EQ(resolved.load(), std::uint64_t{kClients} * 50);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, std::uint64_t{kClients} * 50);
  EXPECT_EQ(stats.accepted, stats.completed + stats.failed +
                                stats.expired + stats.discarded_on_stop);
}

TEST(Server, RetryOnOverloadedRecoversFromAShedDeterministically) {
  // The documented client reaction to Overloaded (retry.hpp) against a
  // REAL overloaded server: capacity-1 lane, workers == 0 so this
  // thread controls exactly when capacity frees up — the injected sleep
  // drains one task, turning the backoff delay into the thing that
  // makes the retry succeed.
  const TimeVaryingGraph g = serving_graph();
  const QueryEngine engine(g, 1);
  ServerConfig config = manual_config();
  config.queue_capacity = {1, 1, 1};
  Server server(engine, config);

  auto prefill = server.submit(query_for(1));  // fills Lane::kNormal

  RetryPolicy policy;
  policy.jitter = 0.0;  // exact delay sequence
  policy.initial_delay = milliseconds(10);
  std::vector<milliseconds> slept;
  const auto ready = [](std::future<JourneyResult>& f) {
    return f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  };
  const JourneyResult result = retry_on_overloaded(
      [&] {
        auto f = server.submit(query_for(0));
        // A shed future is ready (with Overloaded) at submit; an
        // accepted one is queued — drive it now, workers == 0.
        if (!ready(f)) server.run_one();
        return f;
      },
      policy,
      [&](milliseconds d) {
        slept.push_back(d);
        server.run_one();  // capacity frees during the backoff
      });

  EXPECT_TRUE(result == engine.run(query_for(0)));
  EXPECT_EQ(slept, std::vector<milliseconds>{milliseconds(10)});
  EXPECT_NO_THROW((void)prefill.get());

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 3u);  // prefill + shed try + accepted retry
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(Server, StatsReportLiveLaneDepths) {
  const TimeVaryingGraph g = serving_graph();
  const QueryEngine engine(g, 1);
  ServerConfig config = manual_config();
  config.queue_capacity = {8, 8, 8};
  Server server(engine, config);

  std::vector<std::future<JourneyResult>> fs;
  fs.push_back(server.submit(query_for(0), SubmitOptions::in_lane(Lane::kHigh)));
  for (int i = 0; i < 2; ++i) {
    fs.push_back(
        server.submit(query_for(0), SubmitOptions::in_lane(Lane::kNormal)));
  }
  for (int i = 0; i < 3; ++i) {
    fs.push_back(
        server.submit(query_for(0), SubmitOptions::in_lane(Lane::kBatch)));
  }

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.lane_depth_now[static_cast<std::size_t>(Lane::kHigh)], 1u);
  EXPECT_EQ(stats.lane_depth_now[static_cast<std::size_t>(Lane::kNormal)], 2u);
  EXPECT_EQ(stats.lane_depth_now[static_cast<std::size_t>(Lane::kBatch)], 3u);
  EXPECT_EQ(stats.queued_now, 6u);

  ASSERT_TRUE(server.run_one());  // strict priority: the high task
  stats = server.stats();
  EXPECT_EQ(stats.lane_depth_now[static_cast<std::size_t>(Lane::kHigh)], 0u);
  EXPECT_EQ(stats.lane_depth_now[static_cast<std::size_t>(Lane::kNormal)], 2u);

  server.drain();
  stats = server.stats();
  for (const std::size_t depth : stats.lane_depth_now) EXPECT_EQ(depth, 0u);
  EXPECT_EQ(stats.queued_now, 0u);
  for (auto& f : fs) EXPECT_NO_THROW((void)f.get());
}

TEST(ServerStress, LaneDepthsStayCoherentUnderConcurrentSubmitters) {
  // satellite-4 regression: stats() races real submit/dequeue traffic;
  // every snapshot must be internally coherent — per-lane depths within
  // capacity and summing to at most queued_now's cap — and the TSan
  // lane proves the reads are race-free.
  const TimeVaryingGraph g = serving_graph();
  const QueryEngine engine(g, 2);
  ServerConfig config;
  config.workers = 2;
  config.queue_capacity = {16, 16, 16};
  Server server(engine, config);

  std::atomic<bool> done{false};
  std::thread watcher([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const ServerStats s = server.stats();
      std::size_t sum = 0;
      for (std::size_t lane = 0; lane < kLaneCount; ++lane) {
        EXPECT_LE(s.lane_depth_now[lane], config.queue_capacity[lane]);
        sum += s.lane_depth_now[lane];
      }
      EXPECT_LE(sum, std::size_t{3} * 16);
    }
  });
  const auto client = [&](Lane lane) {
    for (int i = 0; i < 40; ++i) {
      try {
        (void)server.submit(query_for(static_cast<NodeId>(i % 4)),
                            SubmitOptions::in_lane(lane))
            .get();
      } catch (const Overloaded&) {
      }
    }
  };
  std::thread c1(client, Lane::kHigh);
  std::thread c2(client, Lane::kNormal);
  std::thread c3(client, Lane::kBatch);
  c1.join();
  c2.join();
  c3.join();
  server.drain();
  done.store(true, std::memory_order_relaxed);
  watcher.join();

  const ServerStats stats = server.stats();
  for (const std::size_t depth : stats.lane_depth_now) EXPECT_EQ(depth, 0u);
}

}  // namespace
