// Property tests for the bit-parallel multi-source reachability kernel
// (tvg::multi_source_foremost) and its QueryEngine::closure wiring:
//  * packed rows are bit-identical to per-source foremost_scan on
//    randomized graphs, across all three policies, in both compiled
//    schedule modes (bitmask segments and endpoint runs) and both queue
//    backends (calendar buckets and the unbounded-horizon heap);
//  * source counts from 1 to 130 cross the 64-lane word boundaries
//    (1 word partial, exactly 1, 2 words, 3 words partial), with
//    duplicate sources allowed;
//  * fallback edges mixed in (exact-predicate schedules, non-constant
//    latencies) route the whole sweep through the per-source serial
//    path, which must still agree;
//  * tiny budgets make the packed guards fire, and the fallback then
//    reproduces serial truncation bit for bit (rows AND flags);
//  * the engine's word-group sharding stays bit-identical to serial at
//    any thread count across word boundaries.
#include <gtest/gtest.h>

#include <vector>

#include "tvg/algorithms.hpp"
#include "tvg/generators.hpp"
#include "tvg/latency.hpp"
#include "tvg/presence.hpp"
#include "tvg/query_engine.hpp"
#include "tvg/schedule_index.hpp"

namespace {

using namespace tvg;

struct Rows {
  std::vector<std::vector<Time>> rows;
  std::vector<char> truncated;

  friend bool operator==(const Rows&, const Rows&) = default;
};

Rows serial_rows(const TimeVaryingGraph& g, const std::vector<NodeId>& sources,
                 Time start_time, Policy policy, SearchLimits limits) {
  Rows out;
  out.rows.resize(sources.size());
  out.truncated.resize(sources.size());
  SearchWorkspace ws;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const ForemostScan scan =
        foremost_scan(g, sources[i], start_time, policy, limits, ws);
    out.rows[i].assign(scan.arrival.begin(), scan.arrival.end());
    out.truncated[i] = scan.truncated ? 1 : 0;
  }
  return out;
}

Rows packed_rows(const TimeVaryingGraph& g, const std::vector<NodeId>& sources,
                 Time start_time, Policy policy, SearchLimits limits) {
  Rows out;
  out.rows.resize(sources.size());
  out.truncated.resize(sources.size());
  SearchWorkspace ws;
  multi_source_foremost(g, sources, start_time, policy, limits, ws, out.rows,
                        out.truncated);
  return out;
}

/// `count` sources cycling over the node set with a stride, so word
/// boundaries see repeats and non-monotone node orders.
std::vector<NodeId> cycling_sources(const TimeVaryingGraph& g,
                                    std::size_t count) {
  std::vector<NodeId> sources(count);
  for (std::size_t i = 0; i < count; ++i) {
    sources[i] = static_cast<NodeId>((i * 7 + 3) % g.node_count());
  }
  return sources;
}

void expect_all_counts_match(const TimeVaryingGraph& g, Time start_time,
                             SearchLimits limits, const char* label) {
  for (const Policy policy :
       {Policy::no_wait(), Policy::bounded_wait(3), Policy::wait()}) {
    for (const std::size_t count : {1u, 63u, 64u, 65u, 128u, 130u}) {
      const auto sources = cycling_sources(g, count);
      const Rows serial = serial_rows(g, sources, start_time, policy, limits);
      const Rows packed = packed_rows(g, sources, start_time, policy, limits);
      ASSERT_EQ(packed, serial)
          << label << " policy=" << policy.to_string()
          << " sources=" << count;
    }
  }
}

TEST(MultiSourceForemost, MatchesSerialOnBitmaskSchedules) {
  // Period 12 <= 512: both compiled segments are presence bitmasks.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RandomPeriodicParams params;
    params.nodes = 14;
    params.edges = 40;
    params.period = 12;
    params.seed = seed;
    const TimeVaryingGraph g = make_random_periodic(params);
    expect_all_counts_match(g, 0, SearchLimits::up_to(200), "periodic");
  }
}

TEST(MultiSourceForemost, MatchesSerialOnEndpointRunSchedules) {
  // Period 600 > kMaxBitmaskBits: the pattern compiles to endpoint runs,
  // exercising the cursor-driven departure walks inside the packed
  // kernel.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    RandomPeriodicParams params;
    params.nodes = 10;
    params.edges = 30;
    params.period = 600;
    params.density = 0.05;
    params.seed = seed;
    const TimeVaryingGraph g = make_random_periodic(params);
    expect_all_counts_match(g, 0, SearchLimits::up_to(2000), "endpoint-run");
  }
}

TEST(MultiSourceForemost, MatchesSerialOnScheduledWithUnboundedHorizon) {
  // Finite-window schedules with horizon = infinity: the packed kernel
  // takes its heap backend (no calendar window), serial takes its own
  // heap/BFS paths; rows must still agree for every policy.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    RandomScheduledParams params;
    params.nodes = 9;
    params.edges = 28;
    params.horizon = 50;
    params.seed = seed;
    const TimeVaryingGraph g = make_random_scheduled(params);
    expect_all_counts_match(g, 0, SearchLimits{}, "scheduled-unbounded");
  }
}

TEST(MultiSourceForemost, MatchesSerialOnMarkovianTraces) {
  EdgeMarkovianParams params;
  params.nodes = 48;
  params.initial_on = 1.0 / 48;
  params.p_birth = 0.02;
  params.p_death = 0.5;
  params.horizon = 64;
  params.seed = 9;
  const TimeVaryingGraph g = make_edge_markovian(params);
  expect_all_counts_match(g, 0, SearchLimits::up_to(120), "markovian");
}

TEST(MultiSourceForemost, PredicateEdgeFallsBackPerSource) {
  RandomPeriodicParams params;
  params.nodes = 8;
  params.edges = 20;
  params.seed = 4;
  TimeVaryingGraph g = make_random_periodic(params);
  // One exact-predicate edge makes the graph ineligible for lane
  // packing (all_semi_periodic() is false); the kernel must route every
  // word through the per-source serial path and still agree.
  g.add_edge(0, 1, 'a',
             Presence::predicate([](Time t) { return t % 5 == 0; }, "mod5"),
             Latency::constant(1));
  ASSERT_FALSE(g.schedule_index().all_semi_periodic());
  expect_all_counts_match(g, 0, SearchLimits::up_to(100), "predicate-mixed");
}

TEST(MultiSourceForemost, NonConstantLatencyFallsBackPerSource) {
  RandomPeriodicParams params;
  params.nodes = 8;
  params.edges = 20;
  params.seed = 5;
  TimeVaryingGraph g = make_random_periodic(params);
  // A non-constant (affine) ζ breaks the Wait-mode dominance the packed
  // Dijkstra relies on; the graph-wide gate falls back for all policies.
  g.add_edge(1, 2, 'b', Presence::always(), Latency::affine(1, 0));
  ASSERT_FALSE(g.schedule_index().all_latency_constant());
  expect_all_counts_match(g, 0, SearchLimits::up_to(100), "latency-mixed");
}

TEST(MultiSourceForemost, TinyBudgetsFallBackBitIdentical) {
  // Budgets small enough that serial searches truncate: the packed
  // guards must fire and the fallback must reproduce serial rows AND
  // truncation flags exactly.
  RandomPeriodicParams params;
  params.nodes = 12;
  params.edges = 36;
  params.seed = 6;
  const TimeVaryingGraph g = make_random_periodic(params);
  for (const std::size_t max_configs : {std::size_t{1}, std::size_t{3},
                                        std::size_t{9}}) {
    SearchLimits limits = SearchLimits::up_to(150);
    limits.max_configs = max_configs;
    for (const Policy policy :
         {Policy::no_wait(), Policy::bounded_wait(2), Policy::wait()}) {
      const auto sources = cycling_sources(g, 70);
      const Rows serial = serial_rows(g, sources, 0, policy, limits);
      const Rows packed = packed_rows(g, sources, 0, policy, limits);
      ASSERT_EQ(packed, serial) << "max_configs=" << max_configs
                                << " policy=" << policy.to_string();
    }
  }
}

TEST(MultiSourceForemost, StartPastHorizonReachesNothing) {
  RandomPeriodicParams params;
  params.nodes = 6;
  params.seed = 7;
  const TimeVaryingGraph g = make_random_periodic(params);
  const auto sources = cycling_sources(g, 65);
  const SearchLimits limits = SearchLimits::up_to(10);
  const Rows packed = packed_rows(g, sources, 50, Policy::wait(), limits);
  EXPECT_EQ(packed, serial_rows(g, sources, 50, Policy::wait(), limits));
  for (const auto& row : packed.rows) {
    for (const Time t : row) EXPECT_EQ(t, kTimeInfinity);
  }
}

TEST(MultiSourceForemost, ValidatesArguments) {
  TimeVaryingGraph g;
  g.add_nodes(3);
  g.add_static_edge(0, 1, 'a');
  SearchWorkspace ws;
  const std::vector<NodeId> sources{0, 1};
  std::vector<std::vector<Time>> rows(1);  // wrong size
  std::vector<char> truncated(2);
  EXPECT_THROW(multi_source_foremost(g, sources, 0, Policy::wait(), {}, ws,
                                     rows, truncated),
               std::invalid_argument);
  rows.resize(2);
  truncated.resize(1);  // wrong size
  EXPECT_THROW(multi_source_foremost(g, sources, 0, Policy::wait(), {}, ws,
                                     rows, truncated),
               std::invalid_argument);
  truncated.resize(2);
  const std::vector<NodeId> bad{0, 9};
  EXPECT_THROW(multi_source_foremost(g, bad, 0, Policy::wait(), {}, ws, rows,
                                     truncated),
               std::out_of_range);
}

TEST(MultiSourceClosure, EngineShardsWordGroupsBitIdenticalAcrossThreads) {
  // 130 sources = 3 lane words; the engine shards WORDS across workers,
  // so rows must be bit-identical to the serial sweep at any thread
  // count (and to the kernel run on one workspace).
  EdgeMarkovianParams params;
  params.nodes = 70;
  params.initial_on = 1.0 / 70;
  params.p_birth = 0.015;
  params.p_death = 0.5;
  params.horizon = 64;
  params.seed = 11;
  const TimeVaryingGraph g = make_edge_markovian(params);
  const SearchLimits limits = SearchLimits::up_to(120);
  for (const Policy policy :
       {Policy::no_wait(), Policy::bounded_wait(3), Policy::wait()}) {
    const auto sources = cycling_sources(g, 130);
    const Rows serial = serial_rows(g, sources, 0, policy, limits);
    QueryEngine engine(g, 0, CacheConfig::disabled());
    for (const unsigned threads : {1u, 2u, 8u}) {
      ClosureQuery q;
      q.sources = sources;
      q.policy = policy;
      q.limits = limits;
      q.threads = threads;
      const ClosureResult result = engine.closure(q);
      ASSERT_EQ(result.rows, serial.rows)
          << "policy=" << policy.to_string() << " threads=" << threads;
      bool any_truncated = false;
      for (const char c : serial.truncated) any_truncated |= c != 0;
      EXPECT_EQ(result.truncated, any_truncated);
    }
  }
}

}  // namespace
