// Unit tests for closure operations on TVG languages (union on all
// graphs, concatenation on the static fragment).
#include <gtest/gtest.h>

#include "core/constructions.hpp"
#include "core/expressivity.hpp"
#include "core/language_ops.hpp"
#include "fa/regex.hpp"
#include "tm/machines.hpp"

namespace tvg::core {
namespace {

TEST(LanguageOps, UnionOfRegularEmbeddings) {
  const TvgAutomaton a = regular_to_tvg(fa::regex_to_min_dfa("ab", "ab"));
  const TvgAutomaton b = regular_to_tvg(fa::regex_to_min_dfa("ba", "ab"));
  const TvgAutomaton u = tvg_union(a, b);
  for (const Word& w : all_words("ab", 4)) {
    const bool expected = w == "ab" || w == "ba";
    EXPECT_EQ(u.accepts(w, Policy::wait()).accepted, expected) << w;
    EXPECT_EQ(u.accepts(w, Policy::no_wait()).accepted, expected) << w;
  }
}

TEST(LanguageOps, UnionOfTimedGraphs) {
  // Union works on ARBITRARY schedules: Figure 1 ∪ Theorem 2.1(palindromes)
  // recognizes exactly the set union under NoWait — but the two components
  // must share the start time, so rebase Figure 1's clock.
  const AnbnConstruction fig1 = make_anbn_tvg(2, 3);
  const ComputableConstruction pal = computable_to_tvg(
      tm::Decider::from_function(tm::is_palindrome, "pal", "ab"));
  ASSERT_EQ(fig1.start_time, pal.start_time);  // both read from t = 1
  const TvgAutomaton u = tvg_union(fig1.automaton(), pal.automaton());
  for (const Word& w : all_words("ab", 7)) {
    const bool expected = tm::is_anbn(w) || tm::is_palindrome(w);
    EXPECT_EQ(u.accepts(w, Policy::no_wait()).accepted, expected)
        << "'" << w << "'";
  }
}

TEST(LanguageOps, UnionRequiresMatchingStartTimes) {
  TvgAutomaton a(TimeVaryingGraph{}, 0);
  TvgAutomaton b(TimeVaryingGraph{}, 1);
  EXPECT_THROW((void)tvg_union(a, b), std::invalid_argument);
}

TEST(LanguageOps, StaticFragmentDetection) {
  EXPECT_TRUE(is_static_fragment(
      regular_to_tvg(fa::regex_to_min_dfa("a*", "ab"))));
  EXPECT_FALSE(is_static_fragment(make_anbn_tvg(2, 3).automaton()));
  TimeVaryingGraph g;
  g.add_nodes(2);
  g.add_edge(0, 1, 'a', Presence::periodic(2, IntervalSet::single(0, 1)),
             Latency::constant(1));
  TvgAutomaton periodic(std::move(g), 0);
  EXPECT_FALSE(is_static_fragment(periodic));
}

TEST(LanguageOps, ConcatOnStaticFragment) {
  const TvgAutomaton a =
      regular_to_tvg(fa::regex_to_min_dfa("a+", "ab"));
  const TvgAutomaton b =
      regular_to_tvg(fa::regex_to_min_dfa("b+", "ab"));
  const TvgAutomaton ab = tvg_concat(a, b);
  const fa::Dfa expected = fa::regex_to_min_dfa("a+b+", "ab");
  for (const Word& w : all_words("ab", 6)) {
    EXPECT_EQ(ab.accepts(w, Policy::wait()).accepted, expected.accepts(w))
        << "'" << w << "'";
  }
}

TEST(LanguageOps, ConcatHandlesEpsilonOnBothSides) {
  const TvgAutomaton maybe_a =
      regular_to_tvg(fa::regex_to_min_dfa("a?", "ab"));
  const TvgAutomaton maybe_b =
      regular_to_tvg(fa::regex_to_min_dfa("b?", "ab"));
  const TvgAutomaton cat = tvg_concat(maybe_a, maybe_b);
  const fa::Dfa expected = fa::regex_to_min_dfa("a?b?", "ab");
  for (const Word& w : all_words("ab", 4)) {
    EXPECT_EQ(cat.accepts(w, Policy::wait()).accepted, expected.accepts(w))
        << "'" << w << "'";
  }
}

TEST(LanguageOps, ConcatChainsAssociatively) {
  const TvgAutomaton a = regular_to_tvg(fa::regex_to_min_dfa("a", "abc"));
  const TvgAutomaton b = regular_to_tvg(fa::regex_to_min_dfa("b", "abc"));
  const TvgAutomaton c = regular_to_tvg(fa::regex_to_min_dfa("c", "abc"));
  const TvgAutomaton left = tvg_concat(tvg_concat(a, b), c);
  const TvgAutomaton right = tvg_concat(a, tvg_concat(b, c));
  for (const Word& w : all_words("abc", 4)) {
    EXPECT_EQ(left.accepts(w, Policy::wait()).accepted,
              right.accepts(w, Policy::wait()).accepted)
        << "'" << w << "'";
    EXPECT_EQ(left.accepts(w, Policy::wait()).accepted, w == "abc") << w;
  }
}

TEST(LanguageOps, ConcatRefusesTimedSchedules) {
  const TvgAutomaton fig1 = make_anbn_tvg(2, 3).automaton();
  const TvgAutomaton stat =
      regular_to_tvg(fa::regex_to_min_dfa("a", "ab"));
  EXPECT_THROW((void)tvg_concat(fig1, stat), std::domain_error);
  EXPECT_THROW((void)tvg_concat(stat, fig1), std::domain_error);
}

}  // namespace
}  // namespace tvg::core
