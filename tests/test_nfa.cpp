// Unit tests for the NFA substrate: Thompson algebra, simulation,
// emptiness, enumeration, trimming, reversal.
#include <gtest/gtest.h>

#include "fa/nfa.hpp"

namespace tvg::fa {
namespace {

TEST(Nfa, LiteralAndWordLang) {
  const Nfa a = Nfa::literal('x', "xy");
  EXPECT_TRUE(a.accepts("x"));
  EXPECT_FALSE(a.accepts("y"));
  EXPECT_FALSE(a.accepts(""));
  EXPECT_FALSE(a.accepts("xx"));
  const Nfa w = Nfa::word_lang("xyx", "xy");
  EXPECT_TRUE(w.accepts("xyx"));
  EXPECT_FALSE(w.accepts("xy"));
  EXPECT_FALSE(w.accepts("xyxy"));
}

TEST(Nfa, EpsilonLangAndEmptyLang) {
  const Nfa eps = Nfa::epsilon_lang("ab");
  EXPECT_TRUE(eps.accepts(""));
  EXPECT_FALSE(eps.accepts("a"));
  const Nfa none = Nfa::empty_lang("ab");
  EXPECT_FALSE(none.accepts(""));
  EXPECT_TRUE(none.empty_language());
  EXPECT_FALSE(eps.empty_language());
}

TEST(Nfa, UnionConcatStar) {
  const Nfa a = Nfa::literal('a', "ab");
  const Nfa b = Nfa::literal('b', "ab");
  const Nfa u = Nfa::union_of(a, b);
  EXPECT_TRUE(u.accepts("a"));
  EXPECT_TRUE(u.accepts("b"));
  EXPECT_FALSE(u.accepts("ab"));
  const Nfa c = Nfa::concat(a, b);
  EXPECT_TRUE(c.accepts("ab"));
  EXPECT_FALSE(c.accepts("a"));
  EXPECT_FALSE(c.accepts("ba"));
  const Nfa s = Nfa::star(c);
  EXPECT_TRUE(s.accepts(""));
  EXPECT_TRUE(s.accepts("ab"));
  EXPECT_TRUE(s.accepts("abab"));
  EXPECT_FALSE(s.accepts("aba"));
}

TEST(Nfa, PlusAndOptional) {
  const Nfa a = Nfa::literal('a', "a");
  EXPECT_FALSE(Nfa::plus(a).accepts(""));
  EXPECT_TRUE(Nfa::plus(a).accepts("a"));
  EXPECT_TRUE(Nfa::plus(a).accepts("aaa"));
  EXPECT_TRUE(Nfa::optional(a).accepts(""));
  EXPECT_TRUE(Nfa::optional(a).accepts("a"));
  EXPECT_FALSE(Nfa::optional(a).accepts("aa"));
}

TEST(Nfa, EpsilonClosureChains) {
  Nfa n(4, "a");
  n.add_epsilon(0, 1);
  n.add_epsilon(1, 2);
  n.add_transition(2, 'a', 3);
  n.set_initial(0);
  n.set_accepting(3);
  EXPECT_TRUE(n.accepts("a"));
  std::set<State> s{0};
  n.epsilon_close(s);
  EXPECT_EQ(s, (std::set<State>{0, 1, 2}));
}

TEST(Nfa, EpsilonCycleTerminates) {
  Nfa n(2, "a");
  n.add_epsilon(0, 1);
  n.add_epsilon(1, 0);
  n.set_initial(0);
  n.set_accepting(1);
  EXPECT_TRUE(n.accepts(""));
}

TEST(Nfa, ShortestWord) {
  const Nfa c = Nfa::concat(Nfa::literal('a', "ab"),
                            Nfa::star(Nfa::literal('b', "ab")));
  EXPECT_EQ(c.shortest_word(), "a");
  EXPECT_EQ(Nfa::empty_lang("ab").shortest_word(), std::nullopt);
  EXPECT_EQ(Nfa::epsilon_lang("ab").shortest_word(), Word{});
}

TEST(Nfa, ShortestWordThroughEpsilonOnlyPath) {
  Nfa n(3, "a");
  n.add_epsilon(0, 1);
  n.add_epsilon(1, 2);
  n.set_initial(0);
  n.set_accepting(2);
  EXPECT_EQ(n.shortest_word(), Word{});
}

TEST(Nfa, EnumerateLengthLexOrder) {
  const Nfa s = Nfa::star(Nfa::literal('a', "ab"));
  const auto words = s.enumerate(3);
  EXPECT_EQ(words, (std::vector<Word>{"", "a", "aa", "aaa"}));
  const Nfa u =
      Nfa::union_of(Nfa::literal('a', "ab"), Nfa::literal('b', "ab"));
  EXPECT_EQ(u.enumerate(2), (std::vector<Word>{"a", "b"}));
}

TEST(Nfa, EnumerateRespectsCap) {
  const Nfa s = Nfa::star(
      Nfa::union_of(Nfa::literal('a', "ab"), Nfa::literal('b', "ab")));
  EXPECT_EQ(s.enumerate(10, 5).size(), 5u);
}

TEST(Nfa, TrimmedRemovesUselessStates) {
  Nfa n(5, "a");
  n.add_transition(0, 'a', 1);
  n.add_transition(1, 'a', 2);
  n.add_transition(3, 'a', 1);  // unreachable from initial
  n.add_transition(1, 'a', 4);  // 4 cannot reach accepting
  n.set_initial(0);
  n.set_accepting(2);
  const Nfa t = n.trimmed();
  EXPECT_EQ(t.state_count(), 3u);
  EXPECT_TRUE(t.accepts("aa"));
  EXPECT_FALSE(t.accepts("a"));
}

TEST(Nfa, ReversedAcceptsMirror) {
  const Nfa ab = Nfa::word_lang("ab", "ab");
  const Nfa ba = ab.reversed();
  EXPECT_TRUE(ba.accepts("ba"));
  EXPECT_FALSE(ba.accepts("ab"));
}

TEST(Nfa, AlphabetWidening) {
  Nfa n = Nfa::literal('a', "a");
  EXPECT_EQ(n.alphabet(), "a");
  n.widen_alphabet("cb");
  EXPECT_EQ(n.alphabet(), "abc");
  n.add_state();
  n.add_transition(0, 'z', 1);  // unseen symbols widen automatically
  EXPECT_EQ(n.alphabet(), "abcz");
}

TEST(Nfa, InvalidStatesThrow) {
  Nfa n(1, "a");
  EXPECT_THROW(n.add_transition(0, 'a', 5), std::out_of_range);
  EXPECT_THROW(n.add_epsilon(5, 0), std::out_of_range);
  EXPECT_THROW(n.set_initial(9), std::out_of_range);
  EXPECT_THROW(n.set_accepting(9), std::out_of_range);
}

TEST(Nfa, ToDotMentionsStates) {
  const Nfa a = Nfa::literal('a', "a");
  const std::string dot = a.to_dot();
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
}

}  // namespace
}  // namespace tvg::fa
