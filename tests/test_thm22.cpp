// E3/E4 — Theorem 2.2: L_wait is exactly the regular languages.
//  ⊇: regular_to_tvg embeds any DFA into a TVG (checked by equivalence).
//  ⊆ (effective): semi_periodic_to_nfa compiles TVGs to NFAs that agree
//     with the configuration search exactly — so L_wait of every graph in
//     the fragment is machine-verifiably regular.
#include <gtest/gtest.h>

#include "core/constructions.hpp"
#include "core/expressivity.hpp"
#include "core/periodic_nfa.hpp"
#include "fa/regex.hpp"
#include "tvg/generators.hpp"

namespace tvg::core {
namespace {

// ----------------------------------------------------------------------
// ⊇ direction: regular ⊆ L_wait.
// ----------------------------------------------------------------------

class RegularToTvg : public ::testing::TestWithParam<const char*> {};

TEST_P(RegularToTvg, WaitAndNoWaitLanguagesEqualTheRegex) {
  const std::string pattern = GetParam();
  const fa::Dfa dfa = fa::regex_to_min_dfa(pattern, "ab");
  const TvgAutomaton a = regular_to_tvg(dfa);
  for (const Word& w : all_words("ab", 7)) {
    const bool expected = dfa.accepts(w);
    EXPECT_EQ(a.accepts(w, Policy::wait()).accepted, expected)
        << pattern << " / '" << w << "' (wait)";
    EXPECT_EQ(a.accepts(w, Policy::no_wait()).accepted, expected)
        << pattern << " / '" << w << "' (nowait)";
    EXPECT_EQ(a.accepts(w, Policy::bounded_wait(3)).accepted, expected)
        << pattern << " / '" << w << "' (wait[3])";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Regexes, RegularToTvg,
    ::testing::Values("a+b+", "(ab)*", "(a|b)*abb", "b+|ab|a+bb+",
                      "(b*ab*ab*)*|b*", "", "a?b?a?"));

TEST(RegularToTvg, RoundTripThroughThePipeline) {
  // regex -> DFA -> TVG -> (semi-periodic pipeline) -> NFA -> min DFA
  // must land back on the same language. Full-circle Theorem 2.2.
  for (const std::string pattern :
       {"a+b+", "(ab)*", "(a|b)*abb", "b+|ab|a+bb+"}) {
    const fa::Dfa original = fa::regex_to_min_dfa(pattern, "ab");
    const TvgAutomaton a = regular_to_tvg(original);
    ASSERT_TRUE(in_semi_periodic_fragment(a));
    for (const Policy policy :
         {Policy::no_wait(), Policy::wait(), Policy::bounded_wait(2)}) {
      const fa::Nfa nfa = semi_periodic_to_nfa(a, policy);
      const fa::Dfa back = fa::Dfa::determinize(nfa).minimized();
      Word counterexample;
      EXPECT_TRUE(fa::Dfa::equivalent(original, back, &counterexample))
          << pattern << " under " << policy.to_string()
          << ", differs on: '" << counterexample << "'";
      EXPECT_EQ(back.state_count(), original.state_count());
    }
  }
}

// ----------------------------------------------------------------------
// ⊆ direction, effective on the fragment: the NFA pipeline is EXACT.
// ----------------------------------------------------------------------

struct FragmentCase {
  std::uint64_t seed;
  Time period;
  std::size_t nodes;
  std::size_t edges;
};

class PipelineVsSearch : public ::testing::TestWithParam<FragmentCase> {};

TEST_P(PipelineVsSearch, NfaAgreesWithConfigurationSearch) {
  const auto& param = GetParam();
  RandomPeriodicParams gen;
  gen.nodes = param.nodes;
  gen.edges = param.edges;
  gen.period = param.period;
  gen.max_latency = 2;
  gen.seed = param.seed;
  TimeVaryingGraph g = make_random_periodic(gen);
  TvgAutomaton a(std::move(g), 0);
  a.set_initial(0);
  a.set_accepting(param.nodes - 1);
  ASSERT_TRUE(in_semi_periodic_fragment(a));

  AcceptOptions opt;
  opt.horizon = 400;  // generous: periods are tiny
  for (const Policy policy : {Policy::no_wait(), Policy::wait(),
                              Policy::bounded_wait(1),
                              Policy::bounded_wait(3)}) {
    const fa::Nfa nfa = semi_periodic_to_nfa(a, policy);
    for (const Word& w : all_words("ab", 5)) {
      EXPECT_EQ(nfa.accepts(w), a.accepts(w, policy, opt).accepted)
          << "seed=" << param.seed << " policy=" << policy.to_string()
          << " w='" << w << "'";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomPeriodic, PipelineVsSearch,
    ::testing::Values(FragmentCase{1, 4, 4, 10}, FragmentCase{2, 6, 5, 12},
                      FragmentCase{3, 3, 3, 8}, FragmentCase{4, 8, 4, 9},
                      FragmentCase{5, 5, 6, 14}, FragmentCase{6, 2, 4, 12},
                      FragmentCase{7, 12, 3, 7}, FragmentCase{8, 7, 5, 10}));

TEST(Pipeline, HandlesSemiPeriodicInitialSegments) {
  // Mixed schedule: a one-shot early edge plus a periodic edge.
  TimeVaryingGraph g;
  const NodeId u = g.add_node();
  const NodeId v = g.add_node();
  const NodeId w = g.add_node();
  g.add_edge(u, v, 'a', Presence::intervals(IntervalSet::single(0, 3)),
             Latency::constant(1));
  g.add_edge(v, w, 'b', Presence::periodic(4, IntervalSet::from_points({2})),
             Latency::constant(1));
  TvgAutomaton a(std::move(g), 0);
  a.set_initial(u);
  a.set_accepting(w);
  AcceptOptions opt;
  opt.horizon = 100;
  for (const Policy policy : {Policy::no_wait(), Policy::wait(),
                              Policy::bounded_wait(2)}) {
    const fa::Nfa nfa = semi_periodic_to_nfa(a, policy);
    for (const Word& word : all_words("ab", 4)) {
      EXPECT_EQ(nfa.accepts(word), a.accepts(word, policy, opt).accepted)
          << policy.to_string() << " '" << word << "'";
    }
  }
  // Concretely: under NoWait reading starts exactly at t=0, arriving v at
  // 1 where the b-edge (residue 2 of period 4) is absent — rejected;
  // waiting one unit (or two) makes it feasible.
  EXPECT_FALSE(semi_periodic_to_nfa(a, Policy::no_wait()).accepts("ab"));
  EXPECT_TRUE(semi_periodic_to_nfa(a, Policy::bounded_wait(1)).accepts("ab"));
  EXPECT_TRUE(semi_periodic_to_nfa(a, Policy::wait()).accepts("ab"));
}

TEST(Pipeline, WaitLanguagesOfPeriodicGraphsAreSmallDfas) {
  // The regularity claim, quantitatively: minimal DFAs of L_wait stay
  // small (bounded by node*period structure), never tracking counters.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    RandomPeriodicParams gen;
    gen.nodes = 5;
    gen.edges = 12;
    gen.period = 6;
    gen.seed = seed;
    TimeVaryingGraph g = make_random_periodic(gen);
    TvgAutomaton a(std::move(g), 0);
    a.set_initial(0);
    a.set_accepting(4);
    const fa::Dfa min_dfa =
        fa::Dfa::determinize(semi_periodic_to_nfa(a, Policy::wait()))
            .minimized();
    // |V| = 5: under Wait the reachable residue structure collapses —
    // tiny automata (the +1 is the dead state).
    EXPECT_LE(min_dfa.state_count(), 5u * 6u + 1u) << "seed=" << seed;
  }
}

TEST(Pipeline, WaitCollapsesResiduesBelowTheSubsetBound) {
  // Under Wait on a purely periodic graph, transitions out of (v, r) do
  // not depend on the residue r at all, so the minimal DFA is bounded by
  // the subset structure over NODES alone — at most 2^|V| + 1 states,
  // INDEPENDENT of the period. (NoWait automata, by contrast, genuinely
  // track residues.) "Waiting forgets time", quantitatively.
  for (std::uint64_t seed = 20; seed <= 26; ++seed) {
    RandomPeriodicParams gen;
    gen.nodes = 4;
    gen.edges = 10;
    gen.period = 5;
    gen.seed = seed;
    TimeVaryingGraph g = make_random_periodic(gen);
    TvgAutomaton a(std::move(g), 0);
    a.set_initial(0);
    a.set_accepting(3);
    const fa::Dfa min_dfa =
        fa::Dfa::determinize(semi_periodic_to_nfa(a, Policy::wait()))
            .minimized();
    EXPECT_LE(min_dfa.state_count(), (1u << 4) + 1u) << "seed=" << seed;
  }
}

TEST(Pipeline, RejectsGraphsOutsideTheFragment) {
  const AnbnConstruction fig1 = make_anbn_tvg(2, 3);
  const TvgAutomaton a = fig1.automaton();
  EXPECT_FALSE(in_semi_periodic_fragment(a));
  EXPECT_THROW(semi_periodic_to_nfa(a, Policy::wait()), std::domain_error);
}

TEST(Pipeline, RejectsOversizedStateSpaces) {
  TimeVaryingGraph g;
  const NodeId u = g.add_node();
  const NodeId v = g.add_node();
  g.add_edge(u, v, 'a', Presence::periodic(997, IntervalSet::from_points({0})),
             Latency::constant(1));
  g.add_edge(v, u, 'a', Presence::periodic(991, IntervalSet::from_points({0})),
             Latency::constant(1));
  TvgAutomaton a(std::move(g), 0);
  a.set_initial(u);
  a.set_accepting(v);
  PeriodicNfaOptions opt;
  opt.max_states = 1000;  // lcm(997, 991) blows through this
  EXPECT_THROW(semi_periodic_to_nfa(a, Policy::wait(), opt),
               std::domain_error);
}

TEST(Pipeline, Figure1WaitCollapseCrossCheckedBySampling) {
  // Figure 1 itself lies outside the fragment (affine latencies,
  // predicate presences) — that is exactly WHY it can count under
  // NoWait. Its Wait-language is nevertheless regular; cross-check the
  // configuration search against the closed form b⁺|ab|a⁺bb⁺ up to
  // length 9 (also covered in test_figure1; here via the regex engine).
  const TvgAutomaton a = make_anbn_tvg(2, 3).automaton();
  const fa::Dfa collapsed = fa::regex_to_min_dfa("b+|ab|a+bb+", "ab");
  for (const Word& w : all_words("ab", 9)) {
    EXPECT_EQ(a.accepts(w, Policy::wait()).accepted, collapsed.accepts(w))
        << "'" << w << "'";
  }
}

}  // namespace
}  // namespace tvg::core
